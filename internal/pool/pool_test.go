package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	var ran [n]int32
	ForEach(n, func(i int) interface{} {
		atomic.AddInt32(&ran[i], 1)
		return i * i
	}, func(i int, r interface{}) {
		if r.(int) != i*i {
			t.Errorf("job %d: result %v, want %d", i, r, i*i)
		}
	})
	for i, c := range ran {
		if c != 1 {
			t.Errorf("job %d ran %d times", i, c)
		}
	}
}

func TestForEachCollectsInOrder(t *testing.T) {
	var order []int
	ForEach(50, func(i int) interface{} { return nil },
		func(i int, _ interface{}) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("collect order[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestForEachNilCollect(t *testing.T) {
	var count int32
	ForEach(10, func(i int) interface{} {
		atomic.AddInt32(&count, 1)
		return nil
	}, nil)
	if count != 10 {
		t.Fatalf("ran %d jobs, want 10", count)
	}
}

func TestForEachSingleWorker(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	var sum int
	ForEach(20, func(i int) interface{} { return i },
		func(_ int, r interface{}) { sum += r.(int) })
	if sum != 190 {
		t.Fatalf("sum = %d, want 190", sum)
	}
}

func TestRun(t *testing.T) {
	var ran [33]int32
	Run(len(ran), func(i int) { atomic.AddInt32(&ran[i], 1) })
	for i, c := range ran {
		if c != 1 {
			t.Errorf("job %d ran %d times", i, c)
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	ForEach(0, func(i int) interface{} {
		t.Fatal("run called for n=0")
		return nil
	}, nil)
}

func TestForEachCtxRunsAllWithoutCancel(t *testing.T) {
	const n = 80
	var ran [n]int32
	var collected []int
	err := ForEachCtx(context.Background(), n, func(i int) interface{} {
		atomic.AddInt32(&ran[i], 1)
		return i
	}, func(i int, r interface{}) {
		if r.(int) != i {
			t.Errorf("job %d: result %v", i, r)
		}
		collected = append(collected, i)
	})
	if err != nil {
		t.Fatalf("uncancelled ForEachCtx: %v", err)
	}
	for i, c := range ran {
		if c != 1 {
			t.Errorf("job %d ran %d times", i, c)
		}
	}
	for i, got := range collected {
		if got != i {
			t.Fatalf("collect order[%d] = %d", i, got)
		}
	}
}

func TestForEachCtxPreCancelledDispatchesNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := ForEachCtx(ctx, 50, func(i int) interface{} {
		atomic.AddInt32(&ran, 1)
		return nil
	}, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("pre-cancelled ctx ran %d jobs", ran)
	}
}

func TestForEachCtxStopsDispatchingOnCancel(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	gate := make(chan struct{})
	var once sync.Once
	err := ForEachCtx(ctx, n, func(i int) interface{} {
		atomic.AddInt32(&ran, 1)
		// The first job to run cancels the context; jobs already
		// dispatched still finish, but the dispatcher must stop well
		// short of n.
		once.Do(func() { cancel(); close(gate) })
		<-gate
		return nil
	}, nil)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&ran); got == 0 || got >= n {
		t.Fatalf("ran %d jobs, want a small in-flight set (0 < ran < %d)", got, n)
	}
}

func TestForEachCtxCollectsOnlyCompletedInOrder(t *testing.T) {
	const n = 400
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	var collected []int
	err := ForEachCtx(ctx, n, func(i int) interface{} {
		if i >= 10 {
			once.Do(cancel)
		}
		return i * 2
	}, func(i int, r interface{}) {
		if r.(int) != i*2 {
			t.Errorf("job %d result %v", i, r)
		}
		collected = append(collected, i)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(collected) == 0 || len(collected) >= n {
		t.Fatalf("collected %d results, want partial set", len(collected))
	}
	for k := 1; k < len(collected); k++ {
		if collected[k] <= collected[k-1] {
			t.Fatalf("collect order not ascending: %v", collected)
		}
	}
}

func TestRunCtxSequentialPathHonorsCancel(t *testing.T) {
	old := Workers
	Workers = 1
	defer func() { Workers = old }()
	ctx, cancel := context.WithCancel(context.Background())
	var ran int
	err := RunCtx(ctx, 100, func(i int) {
		ran++
		if i == 4 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 5 {
		t.Fatalf("sequential path ran %d jobs, want 5", ran)
	}
}
