package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	var ran [n]int32
	ForEach(n, func(i int) interface{} {
		atomic.AddInt32(&ran[i], 1)
		return i * i
	}, func(i int, r interface{}) {
		if r.(int) != i*i {
			t.Errorf("job %d: result %v, want %d", i, r, i*i)
		}
	})
	for i, c := range ran {
		if c != 1 {
			t.Errorf("job %d ran %d times", i, c)
		}
	}
}

func TestForEachCollectsInOrder(t *testing.T) {
	var order []int
	ForEach(50, func(i int) interface{} { return nil },
		func(i int, _ interface{}) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("collect order[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestForEachNilCollect(t *testing.T) {
	var count int32
	ForEach(10, func(i int) interface{} {
		atomic.AddInt32(&count, 1)
		return nil
	}, nil)
	if count != 10 {
		t.Fatalf("ran %d jobs, want 10", count)
	}
}

func TestForEachSingleWorker(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	var sum int
	ForEach(20, func(i int) interface{} { return i },
		func(_ int, r interface{}) { sum += r.(int) })
	if sum != 190 {
		t.Fatalf("sum = %d, want 190", sum)
	}
}

func TestRun(t *testing.T) {
	var ran [33]int32
	Run(len(ran), func(i int) { atomic.AddInt32(&ran[i], 1) })
	for i, c := range ran {
		if c != 1 {
			t.Errorf("job %d ran %d times", i, c)
		}
	}
}

func TestForEachZeroJobs(t *testing.T) {
	ForEach(0, func(i int) interface{} {
		t.Fatal("run called for n=0")
		return nil
	}, nil)
}
