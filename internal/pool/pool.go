// Package pool provides the worker pool shared by the experiment
// harness (internal/expt) and the cluster epoch loop (internal/cluster):
// n independent jobs fanned out across GOMAXPROCS goroutines with
// deterministic result collection.
//
// Determinism contract: job i always receives index i, results are
// handed to collect in index order after all jobs finish, and jobs must
// not share mutable state. Under that contract the observable outcome
// is independent of goroutine scheduling, which is what lets the
// experiment tables and the cluster vote tallies be byte-identical
// across runs.
package pool

import (
	"context"
	"runtime"
	"sync"
)

// Workers, when positive, overrides the worker count (normally
// GOMAXPROCS). The CLIs expose it as -workers; by the determinism
// contract above, any setting produces identical observable results —
// the flag only trades wall-clock time for parallelism.
var Workers int

// ForEach runs n independent jobs across worker goroutines and then
// calls collect once per job, in index order, on the caller's
// goroutine. run must be safe to call concurrently for distinct
// indices; collect (which may be nil) is never called concurrently.
func ForEach(n int, run func(i int) interface{}, collect func(i int, result interface{})) {
	workers := runtime.GOMAXPROCS(0)
	if Workers > 0 {
		workers = Workers
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r := run(i)
			if collect != nil {
				collect(i, r)
			}
		}
		return
	}
	results := make([]interface{}, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if collect == nil {
		return
	}
	for i := 0; i < n; i++ {
		collect(i, results[i])
	}
}

// Run is ForEach for jobs without results: it executes fn for every
// index in [0, n) across the worker pool and returns when all are done.
func Run(n int, fn func(i int)) {
	ForEach(n, func(i int) interface{} {
		fn(i)
		return nil
	}, nil)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is
// done, no further jobs are dispatched (jobs already started run to
// completion — the pool never interrupts a job midway). collect is
// still called on the caller's goroutine in index order, but only for
// jobs that actually ran, so a cancelled fan-out yields a clean prefix
// plus possibly a few in-flight indices rather than partial results.
// Returns ctx.Err() when cancellation cut the dispatch short, nil when
// every job ran. A ctx that is already done dispatches nothing.
func ForEachCtx(ctx context.Context, n int, run func(i int) interface{}, collect func(i int, result interface{})) error {
	workers := runtime.GOMAXPROCS(0)
	if Workers > 0 {
		workers = Workers
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			r := run(i)
			if collect != nil {
				collect(i, r)
			}
		}
		return nil
	}
	results := make([]interface{}, n)
	ran := make([]bool, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = run(i)
				ran[i] = true
			}
		}()
	}
	var err error
dispatch:
	for i := 0; i < n; i++ {
		// Check first so an already-done ctx never dispatches: the
		// select below would otherwise pick between the two ready
		// cases at random.
		if err = ctx.Err(); err != nil {
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	if collect != nil {
		for i := 0; i < n; i++ {
			if ran[i] {
				collect(i, results[i])
			}
		}
	}
	return err
}

// RunCtx is ForEachCtx for jobs without results.
func RunCtx(ctx context.Context, n int, fn func(i int)) error {
	return ForEachCtx(ctx, n, func(i int) interface{} {
		fn(i)
		return nil
	}, nil)
}
