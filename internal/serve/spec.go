// Package serve hosts the stabilization-as-a-service daemon: a
// long-lived HTTP server running many concurrent fault-injected
// simulation sessions on top of the batch machinery the rest of the
// repo provides. A session wraps either one core.System (a "machine"
// session, the ssos-run shape) or one cluster.Cluster (a "cluster"
// session, the ssos-cluster shape); clients create sessions from named
// guest images, advance them by steps or epochs, inject faults on
// demand, fetch obs metrics snapshots, and stream the live obs event
// feed over SSE.
//
// The design invariants, in order:
//
//   - Determinism bridge. A served session is driven by the exact same
//     construction and injection code paths as the batch CLIs, and all
//     mutation is serialized through a per-session run loop, so for a
//     fixed image/seed/command sequence the JSONL event stream fetched
//     from the service is byte-identical to the ssos-run/-cluster
//     -events-out output. The CI smoke job and the bridge tests
//     enforce this.
//   - Bounded concurrency. Sessions do not own goroutines: a fixed
//     worker set (budgeted like internal/pool's -workers contract)
//     executes session commands from a run queue, so a thousand idle
//     sessions cost memory only, and the simulation CPU fan-out is
//     capped regardless of client count.
//   - Deterministic eviction. The registry ages sessions on a logical
//     clock that ticks once per mutating operation — never wall time —
//     so which sessions get evicted is a pure function of the request
//     sequence, testable byte-for-byte like everything else here.
//   - Backpressure without loss of truth. Live SSE subscribers read
//     from fixed-size per-subscriber rings; a slow reader drops old
//     frames and is told exactly how many (a drop frame), while the
//     session's collector retains the full stream for cursor-based
//     refetch.
package serve

import (
	"fmt"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
)

// Image is a named, fully specified guest configuration — what a
// client creates a session from. Name is the API identifier; Cfg is
// the core construction the name stands for.
type Image struct {
	Name string
	Desc string
	Cfg  core.Config
}

// images lists every named image in fixed order (the /api/images
// response order). The first eight are the paper's approaches exactly
// as cmd/ssos-run spells them; the variants wire the workload and
// kernel options that ssos-run exposes as extra flags.
var images = []Image{
	{"baseline", "conventional system: installed once, no watchdog, exceptions crash", core.Config{Approach: core.ApproachBaseline}},
	{"reinstall", "Section 3: periodic full reinstall from ROM and restart (Figure 1)", core.Config{Approach: core.ApproachReinstall}},
	{"continue", "Section 3 variant: refresh the executable, continue where interrupted", core.Config{Approach: core.ApproachContinue}},
	{"monitor", "Section 4: executable refresh + consistency-predicate repair", core.Config{Approach: core.ApproachMonitor}},
	{"primitive", "Section 5.1: loop-free ROM process chain", core.Config{Approach: core.ApproachPrimitive}},
	{"scheduler", "Section 5.2: self-stabilizing process-table scheduler (Figures 2-5)", core.Config{Approach: core.ApproachScheduler}},
	{"checkpoint", "related-work comparator: periodic snapshot + rollback on watchdog", core.Config{Approach: core.ApproachCheckpoint}},
	{"adaptive", "related-work comparator: silence-triggered reinstall watchdog", core.Config{Approach: core.ApproachAdaptive}},
	{"scheduler-ring", "scheduler running Dijkstra's token ring as its process set", core.Config{Approach: core.ApproachScheduler, Workload: core.WorkloadTokenRing}},
	{"reinstall-tickful", "reinstall approach over the interrupt-driven (hlt + timer ISR) kernel", core.Config{Approach: core.ApproachReinstall, TickfulKernel: true}},
	{"scheduler-mbox-kstate", "scheduler running the K-state token ring through the shared mailbox region", core.Config{Approach: core.ApproachScheduler, Workload: core.WorkloadMailboxKState}},
	{"scheduler-mbox-dijkstra3", "scheduler running Dijkstra's 3-state ring through the shared mailbox region", core.Config{Approach: core.ApproachScheduler, Workload: core.WorkloadMailboxDijkstra3}},
	{"scheduler-mbox-ghosh4", "scheduler running Ghosh's 4-state chain through the shared mailbox region", core.Config{Approach: core.ApproachScheduler, Workload: core.WorkloadMailboxGhosh4}},
}

// Images returns the named guest images in their fixed catalog order.
func Images() []Image {
	return append([]Image(nil), images...)
}

// LookupImage resolves an image by name.
func LookupImage(name string) (Image, bool) {
	for _, img := range images {
		if img.Name == name {
			return img, true
		}
	}
	return Image{}, false
}

// faultKinds lists the machine fault classes in fixed order — the same
// vocabulary as ssos-run's -fault flag (minus "none", which is simply
// the absence of an injection request in the service world).
var faultKinds = []string{
	"bitflip", "os-blast", "cpu-blast", "pc", "all-ram", "table-blast", "proc-code", "mailbox",
}

// FaultKinds returns the injectable machine fault class names.
func FaultKinds() []string {
	return append([]string(nil), faultKinds...)
}

// InjectFault applies the named fault class to the system through the
// given injector. This is THE injection path: cmd/ssos-run calls it
// for -fault and the service calls it for POST .../fault, which is
// what makes a served fault byte-identical to a batch one for the same
// seed and step.
func InjectFault(s *core.System, inj *fault.Injector, kind string) error {
	switch kind {
	case "bitflip":
		inj.FlipRAMBit()
	case "os-blast":
		inj.RandomizeRegion(mem.Region{Name: "os", Start: uint32(guest.OSSeg) << 4, Size: guest.ImageSize})
	case "cpu-blast":
		inj.BlastCPU()
	case "pc":
		inj.CorruptIP()
		inj.CorruptSegment()
	case "all-ram":
		inj.BlastRAM()
	case "table-blast":
		inj.RandomizeRegion(mem.Region{Name: "table", Start: uint32(guest.SchedSeg) << 4,
			Size: guest.ProcessTableOff + guest.NumProcs*guest.ProcessEntrySize})
	case "proc-code":
		inj.RandomizeRegion(mem.Region{Name: "p0",
			Start: uint32(guest.ProcCodeSeg(0)) << 4, Size: guest.ProcRegionSize})
	case "mailbox":
		// Algorithm-layer fault for the mailbox ring workloads: the
		// shared slot region and every node's parked register words.
		inj.RandomizeRegion(mem.Region{Name: "mailbox",
			Start: guest.MailboxAddr(0), Size: 2 * guest.MaxMailboxNodes})
		for i := 0; i < guest.MailboxNodes; i++ {
			inj.RandomizeRegion(mem.Region{Name: "node-regs",
				Start: guest.MailboxRegLAddr(i), Size: 4})
		}
	default:
		return fmt.Errorf("unknown fault %q", kind)
	}
	return nil
}

// SessionSpec is the client's session-creation request. Kind selects
// the shape ("machine", the default, or "cluster"); Image names the
// guest configuration; Seed drives every injector the session owns.
// The remaining fields apply to one kind each and are ignored by the
// other.
type SessionSpec struct {
	Kind  string `json:"kind,omitempty"`
	Image string `json:"image"`
	Seed  int64  `json:"seed,omitempty"`

	// Machine options, mirroring ssos-run flags.
	Period   uint32 `json:"period,omitempty"`    // watchdog period / quantum override
	StockNMI bool   `json:"stock_nmi,omitempty"` // disable the paper's NMI-counter hardware

	// Cluster options, mirroring ssos-cluster flags.
	Replicas    int     `json:"replicas,omitempty"`
	EpochSteps  int     `json:"epoch_steps,omitempty"`
	Faults      string  `json:"faults,omitempty"` // strike fault class (cluster.ParseFaultMode)
	StrikeEvery int     `json:"strike_every,omitempty"`
	StrikeProb  float64 `json:"strike_prob,omitempty"`
}

// Kinds.
const (
	KindMachine = "machine"
	KindCluster = "cluster"
)

// normalize validates the spec and fills defaults. It returns the
// resolved image.
func (sp *SessionSpec) normalize() (Image, error) {
	if sp.Kind == "" {
		sp.Kind = KindMachine
	}
	if sp.Kind != KindMachine && sp.Kind != KindCluster {
		return Image{}, fmt.Errorf("unknown session kind %q", sp.Kind)
	}
	if sp.Image == "" {
		sp.Image = "reinstall"
	}
	img, ok := LookupImage(sp.Image)
	if !ok {
		return Image{}, fmt.Errorf("unknown image %q", sp.Image)
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	return img, nil
}
