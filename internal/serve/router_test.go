package serve

import (
	"testing"

	"ssos/internal/obs"
)

// TestAppendSSEGolden pins the exact wire format of the SSE frames:
// the id line carries the session event cursor, the data line is the
// event's canonical JSON. Resumable streams depend on this shape.
func TestAppendSSEGolden(t *testing.T) {
	var b []byte
	b = AppendSSE(b, Frame{Seq: 0, Ev: obs.Ev(30000, obs.TypeNMI)})
	b = AppendSSE(b, Frame{Seq: 1, Ev: obs.Event{
		Step: 31000, Type: obs.TypeVoteTally,
		Replica: 2, Epoch: 1, Code: 77, Arg: 3, Note: "quorum",
	}})
	b = AppendSSEDrop(b, 6)

	want := "id: 0\nevent: ssos\ndata: {\"step\":30000,\"type\":\"nmi\"}\n\n" +
		"id: 1\nevent: ssos\ndata: {\"step\":31000,\"type\":\"vote-tally\"," +
		"\"replica\":2,\"epoch\":1,\"code\":77,\"arg\":3,\"note\":\"quorum\"}\n\n" +
		"event: ssos-drop\ndata: {\"dropped\":6}\n\n"
	if string(b) != want {
		t.Errorf("SSE rendering drifted:\ngot:\n%s\nwant:\n%s", b, want)
	}
}

// TestSlowSubscriberDropsOldest exercises the backpressure contract: a
// ring of 4 receiving 10 frames keeps the newest 4 and counts 6 drops.
func TestSlowSubscriberDropsOldest(t *testing.T) {
	r := NewRouter(4)
	sub := r.Subscribe()
	for i := 0; i < 10; i++ {
		r.Publish(uint64(i), obs.Ev(uint64(100*i), obs.TypeNMI))
	}
	frames, dropped, closed := sub.Take(nil)
	if closed {
		t.Fatal("subscriber closed prematurely")
	}
	if dropped != 6 {
		t.Errorf("dropped = %d, want 6", dropped)
	}
	if len(frames) != 4 {
		t.Fatalf("got %d frames, want 4", len(frames))
	}
	for i, f := range frames {
		if want := uint64(6 + i); f.Seq != want {
			t.Errorf("frame %d: seq = %d, want %d (oldest must fall first)", i, f.Seq, want)
		}
	}
	// The drop counter resets once reported.
	if _, dropped, _ := sub.Take(frames); dropped != 0 {
		t.Errorf("second Take reports dropped = %d, want 0", dropped)
	}
}

// TestTakeDrainsInOrder checks the ring preserves publish order when
// nothing is dropped.
func TestTakeDrainsInOrder(t *testing.T) {
	r := NewRouter(8)
	sub := r.Subscribe()
	for i := 0; i < 5; i++ {
		r.Publish(uint64(i), obs.Ev(uint64(i), obs.TypeIRQ))
	}
	frames, dropped, _ := sub.Take(nil)
	if dropped != 0 {
		t.Errorf("dropped = %d, want 0", dropped)
	}
	for i, f := range frames {
		if f.Seq != uint64(i) {
			t.Errorf("frame %d out of order: seq %d", i, f.Seq)
		}
	}
	if len(frames) != 5 {
		t.Errorf("got %d frames, want 5", len(frames))
	}
}

// TestRouterClose verifies teardown: existing subscribers observe
// closure, late subscribers are born closed, and publishing to a
// closed router is a harmless no-op.
func TestRouterClose(t *testing.T) {
	r := NewRouter(2)
	sub := r.Subscribe()
	r.Publish(0, obs.Ev(1, obs.TypeNMI))
	r.Close()

	if !sub.Wait(nil) {
		t.Fatal("Wait on a closed subscriber must return true")
	}
	frames, _, closed := sub.Take(nil)
	if !closed {
		t.Error("subscriber not marked closed after router Close")
	}
	if len(frames) != 1 {
		t.Errorf("pre-close frames lost: got %d, want 1", len(frames))
	}

	late := r.Subscribe()
	if _, _, closed := late.Take(nil); !closed {
		t.Error("subscriber created after Close must be born closed")
	}
	r.Publish(1, obs.Ev(2, obs.TypeNMI)) // must not panic
	if r.Subscribers() != 0 {
		t.Errorf("closed router reports %d subscribers", r.Subscribers())
	}
}

// TestSubscriberWaitCancel checks Wait honors the caller's cancel
// channel — the mechanism that detaches an SSE handler when its client
// disconnects.
func TestSubscriberWaitCancel(t *testing.T) {
	r := NewRouter(2)
	sub := r.Subscribe()
	cancel := make(chan struct{})
	close(cancel)
	if sub.Wait(cancel) {
		t.Error("Wait with fired cancel and no frames must return false")
	}
	r.Publish(0, obs.Ev(1, obs.TypeNMI))
	if !sub.Wait(cancel) {
		t.Error("Wait must report buffered frames even when cancel has fired")
	}
}

// TestUnsubscribeStopsDelivery checks a detached subscriber receives
// nothing further and the router forgets it.
func TestUnsubscribeStopsDelivery(t *testing.T) {
	r := NewRouter(4)
	sub := r.Subscribe()
	r.Unsubscribe(sub)
	if r.Subscribers() != 0 {
		t.Fatalf("router still tracks %d subscribers", r.Subscribers())
	}
	r.Publish(0, obs.Ev(1, obs.TypeNMI))
	frames, _, closed := sub.Take(nil)
	if len(frames) != 0 || !closed {
		t.Errorf("after Unsubscribe: frames=%d closed=%v, want 0/true", len(frames), closed)
	}
}
