package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"ssos/internal/pool"
)

// Registry defaults.
const (
	// DefaultMaxSessions caps concurrently hosted sessions. Sized for
	// the stress target (hundreds of live machines) while bounding
	// memory: a machine session owns a 1 MiB address space, so the cap
	// is also, to first order, the daemon's memory budget.
	DefaultMaxSessions = 1024
	// DefaultIdleOps is the idle-eviction horizon in registry
	// operations: a session untouched for this many mutating API
	// operations is evicted. Logical, not temporal — eviction is a
	// pure function of the request sequence.
	DefaultIdleOps = 4096
)

// ErrFull is returned by Create when the registry is at its session
// cap and no session is idle enough to evict.
var ErrFull = errors.New("session table full")

// ErrShutdown is returned for operations on a registry that has been
// shut down.
var ErrShutdown = errors.New("server shutting down")

// Options parameterizes a Registry. The zero value of every field
// selects a default.
type Options struct {
	// MaxSessions caps live sessions (default DefaultMaxSessions).
	MaxSessions int
	// IdleOps is the idle-eviction horizon in mutating operations
	// (default DefaultIdleOps; negative disables eviction).
	IdleOps int
	// Workers sizes the simulation worker set (default pool.Workers,
	// falling back to GOMAXPROCS — the same budget contract the batch
	// CLIs' -workers flag sets).
	Workers int
	// RingSize is the per-subscriber SSE ring capacity (default
	// DefaultRingSize).
	RingSize int
}

// Stats is the registry's own health snapshot.
type Stats struct {
	Sessions int    `json:"sessions"`
	Created  uint64 `json:"created"`
	Evicted  uint64 `json:"evicted"`
	Clock    uint64 `json:"clock"`
	Workers  int    `json:"workers"`
}

// Registry owns every hosted session: creation against the cap,
// lookup, deterministic idle eviction, and the bounded worker set that
// executes all session commands.
//
// Two locks, strictly ordered: mu (session table, logical clock) may
// be taken alone or before a session's internal lock; the run-queue
// lock qmu is leaf-only. Workers never take mu.
type Registry struct {
	opts    Options
	workers int

	mu sync.Mutex
	//ssos:guarded-by mu
	sessions map[string]*Session
	//ssos:guarded-by mu
	order []*Session // live sessions in creation order (eviction scan order)
	//ssos:guarded-by mu
	nextID uint64
	//ssos:guarded-by mu
	clock uint64
	//ssos:guarded-by mu
	created uint64
	//ssos:guarded-by mu
	evicted uint64
	//ssos:guarded-by mu
	closed bool

	qmu   sync.Mutex
	qcond *sync.Cond
	//ssos:guarded-by qmu
	runq []*Session
	//ssos:guarded-by qmu
	stopping bool
	wg       sync.WaitGroup
}

// NewRegistry builds a registry and starts its worker set.
func NewRegistry(o Options) *Registry {
	if o.MaxSessions == 0 {
		o.MaxSessions = DefaultMaxSessions
	}
	if o.IdleOps == 0 {
		o.IdleOps = DefaultIdleOps
	}
	if o.RingSize == 0 {
		o.RingSize = DefaultRingSize
	}
	workers := o.Workers
	if workers <= 0 {
		workers = pool.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	r := &Registry{
		opts:     o,
		workers:  workers,
		sessions: make(map[string]*Session),
	}
	r.qcond = sync.NewCond(&r.qmu)
	for w := 0; w < workers; w++ {
		r.wg.Add(1)
		go r.worker()
	}
	return r
}

// worker executes session command queues from the run queue until the
// registry stops. Session drains are serialized per session by the
// scheduled flag, so two workers never touch one simulation.
func (r *Registry) worker() {
	defer r.wg.Done()
	for {
		r.qmu.Lock()
		for len(r.runq) == 0 && !r.stopping {
			r.qcond.Wait()
		}
		if len(r.runq) == 0 {
			r.qmu.Unlock()
			return
		}
		s := r.runq[0]
		r.runq = r.runq[1:]
		r.qmu.Unlock()
		s.drain()
	}
}

// enqueue schedules a session's command queue for a worker.
func (r *Registry) enqueue(s *Session) {
	r.qmu.Lock()
	r.runq = append(r.runq, s)
	r.qmu.Unlock()
	r.qcond.Signal()
}

// Create builds a session from the spec, registers it and returns it.
// The construction (guest assembly, machine boot) happens outside the
// registry lock; insertion ticks the logical clock and may evict idle
// sessions to make room.
func (r *Registry) Create(sp SessionSpec) (*Session, error) {
	if _, err := sp.normalize(); err != nil {
		return nil, err
	}
	// Reserve an ID first so session identity follows creation order
	// even when constructions race.
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrShutdown
	}
	r.nextID++
	id := fmt.Sprintf("s%d", r.nextID)
	r.mu.Unlock()

	s, err := newSession(id, sp, r.opts.RingSize)
	if err != nil {
		return nil, err
	}
	s.reg = r

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrShutdown
	}
	r.tick() // may evict idle sessions, freeing room
	if len(r.sessions) >= r.opts.MaxSessions {
		return nil, ErrFull
	}
	s.created = r.clock
	s.lastTouch = r.clock
	r.sessions[s.ID] = s
	r.order = append(r.order, s)
	r.created++
	return s, nil
}

// Get returns the session by ID.
func (r *Registry) Get(id string) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.sessions[id]
	return s, ok
}

// List returns the live sessions in creation order.
func (r *Registry) List() []*Session {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Session(nil), r.order...)
}

// Len returns the live session count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Stats returns the registry health snapshot.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Sessions: len(r.sessions),
		Created:  r.created,
		Evicted:  r.evicted,
		Clock:    r.clock,
		Workers:  r.workers,
	}
}

// stamps returns a session's creation and last-touch clock values.
func (r *Registry) stamps(s *Session) (created, lastTouch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return s.created, s.lastTouch
}

// Touch records a mutating operation on the session: the logical clock
// ticks, the session's idle age resets, and the idle sweep runs. Every
// state-changing API call (run, fault) passes through here before its
// command executes.
func (r *Registry) Touch(s *Session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.tick()
	s.lastTouch = r.clock
}

// Delete closes and removes the session.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	s, ok := r.sessions[id]
	if ok {
		r.removeLocked(s)
		r.tick()
	}
	r.mu.Unlock()
	if ok {
		s.close(ErrClosed)
	}
	return ok
}

// tick advances the logical clock one mutating operation and runs the
// idle sweep. Caller holds mu.
//
//ssos:locked mu
func (r *Registry) tick() {
	r.clock++
	if r.opts.IdleOps < 0 {
		return
	}
	horizon := uint64(r.opts.IdleOps)
	// Scan in creation order so which sessions fall is deterministic
	// for a fixed operation sequence.
	var evict []*Session
	for _, s := range r.order {
		if r.clock-s.lastTouch > horizon {
			evict = append(evict, s)
		}
	}
	for _, s := range evict {
		r.removeLocked(s)
		r.evicted++
		// close flushes the session's queued commands and closes its
		// subscribers; safe under mu (lock order: mu before session
		// locks, never the reverse).
		s.close(ErrEvicted)
	}
}

// removeLocked unlinks a session from the table. Caller holds mu.
//
//ssos:locked mu
func (r *Registry) removeLocked(s *Session) {
	delete(r.sessions, s.ID)
	for i, o := range r.order {
		if o == s {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

// Evicted returns the lifetime eviction count.
func (r *Registry) Evicted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// Shutdown closes every session (tearing the fan-out down on the
// context-aware pool) and stops the worker set. In-flight commands
// finish; queued ones fail with ErrShutdown. Idempotent.
func (r *Registry) Shutdown(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	sessions := append([]*Session(nil), r.order...)
	r.sessions = make(map[string]*Session)
	r.order = nil
	r.mu.Unlock()

	err := pool.RunCtx(ctx, len(sessions), func(i int) {
		sessions[i].close(ErrShutdown)
	})
	if err != nil {
		// Cancellation cut the parallel teardown short; finish
		// sequentially — close is cheap and must not be skipped, or
		// waiting clients would hang.
		for _, s := range sessions {
			s.close(ErrShutdown)
		}
	}

	r.qmu.Lock()
	r.stopping = true
	r.qmu.Unlock()
	r.qcond.Broadcast()
	r.wg.Wait()
	return err
}
