package serve

import (
	"strconv"
	"sync"

	"ssos/internal/obs"
)

// DefaultRingSize is the per-subscriber ring capacity when the
// registry options leave it zero. Big enough that a reader only has to
// keep up on average; small enough that a stalled reader costs a few
// KiB, not the session's whole history.
const DefaultRingSize = 256

// Frame is one routed event: the session-wide sequence number (the
// event's index in the session collector, so it doubles as the
// ?since= cursor for refetch/resume) and the event itself.
type Frame struct {
	Seq uint64
	Ev  obs.Event
}

// Router fans a session's live event feed out to subscribers. Publish
// never blocks and never allocates per subscriber beyond the fixed
// ring: a subscriber that reads too slowly loses its oldest buffered
// frames and is told how many (drop-and-count backpressure). The
// session collector remains the source of truth — drops only thin the
// live feed, the full stream stays fetchable by cursor.
type Router struct {
	ringSize int

	mu sync.Mutex
	// subs is kept as a slice in subscription order, so the fan-out in
	// Publish (which runs under the collector lock) visits subscribers
	// deterministically — and the detmap analyzer, which now covers this
	// package, has no map iteration to squint at.
	//ssos:guarded-by mu
	subs []*Subscriber
	//ssos:guarded-by mu
	closed bool
}

// NewRouter returns a router with the given per-subscriber ring
// capacity (0 selects DefaultRingSize).
func NewRouter(ringSize int) *Router {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	return &Router{ringSize: ringSize}
}

// Subscribe registers a new subscriber. Subscribing to a closed router
// yields an already-closed subscriber (reads report closure
// immediately) rather than an error, so teardown races are benign.
func (r *Router) Subscribe() *Subscriber {
	s := &Subscriber{
		ring:   make([]Frame, r.ringSize),
		notify: make(chan struct{}, 1),
	}
	r.mu.Lock()
	if r.closed {
		s.closed = true
	} else {
		r.subs = append(r.subs, s)
	}
	r.mu.Unlock()
	if s.closed {
		s.wake()
	}
	return s
}

// Unsubscribe removes the subscriber and marks it closed.
func (r *Router) Unsubscribe(s *Subscriber) {
	r.mu.Lock()
	for i, o := range r.subs {
		if o == s {
			r.subs = append(r.subs[:i], r.subs[i+1:]...)
			break
		}
	}
	r.mu.Unlock()
	s.close()
}

// Publish fans one frame out to every subscriber. It is safe to call
// from the collector hook (under the collector lock): per-subscriber
// work is a ring write and a non-blocking wake.
func (r *Router) Publish(seq uint64, e obs.Event) {
	r.mu.Lock()
	for _, s := range r.subs {
		s.push(Frame{Seq: seq, Ev: e})
	}
	r.mu.Unlock()
}

// Close closes every subscriber and rejects future ones. A session
// calls it once on teardown.
func (r *Router) Close() {
	r.mu.Lock()
	subs := r.subs
	r.subs = nil
	r.closed = true
	r.mu.Unlock()
	for _, s := range subs {
		s.close()
	}
}

// Subscribers returns the current subscriber count.
func (r *Router) Subscribers() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// Subscriber is one live event reader: a fixed-capacity ring of frames
// plus a count of frames dropped since the last Take.
type Subscriber struct {
	mu sync.Mutex
	//ssos:guarded-by mu
	ring []Frame
	//ssos:guarded-by mu
	head, n int
	//ssos:guarded-by mu
	dropped uint64
	//ssos:guarded-by mu
	closed bool
	notify chan struct{}
}

// push appends a frame, overwriting the oldest when full.
func (s *Subscriber) push(f Frame) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.dropped++
	}
	s.ring[(s.head+s.n)%len(s.ring)] = f
	s.n++
	s.mu.Unlock()
	s.wake()
}

func (s *Subscriber) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

func (s *Subscriber) close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		s.wake()
	}
}

// Wait blocks until frames are available, the subscriber is closed, or
// cancel fires; it returns false only for cancellation. Spurious wakes
// are possible (Take may come back empty) — callers loop.
func (s *Subscriber) Wait(cancel <-chan struct{}) bool {
	s.mu.Lock()
	ready := s.n > 0 || s.closed
	s.mu.Unlock()
	if ready {
		return true
	}
	select {
	case <-s.notify:
		return true
	case <-cancel:
		return false
	}
}

// Take drains the buffered frames into buf (reused when its capacity
// allows), returning the frames, the number of frames dropped since
// the previous Take, and whether the subscriber is closed. After a
// closed Take returns zero frames, no more will ever arrive.
func (s *Subscriber) Take(buf []Frame) (frames []Frame, dropped uint64, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	frames = buf[:0]
	for i := 0; i < s.n; i++ {
		frames = append(frames, s.ring[(s.head+i)%len(s.ring)])
	}
	s.head, s.n = 0, 0
	dropped = s.dropped
	s.dropped = 0
	return frames, dropped, s.closed
}

// AppendSSE renders one frame as a Server-Sent-Events message:
//
//	id: <seq>
//	event: ssos
//	data: {"step":...,"type":"..."}
//
// The id field is the session event cursor, so a client can resume a
// broken stream with ?since=<last id + 1> and lose nothing.
func AppendSSE(b []byte, f Frame) []byte {
	b = append(b, "id: "...)
	b = strconv.AppendUint(b, f.Seq, 10)
	b = append(b, "\nevent: ssos\ndata: "...)
	b = f.Ev.AppendJSON(b)
	return append(b, "\n\n"...)
}

// AppendSSEDrop renders the backpressure notice a slow subscriber gets
// in place of the frames it lost:
//
//	event: ssos-drop
//	data: {"dropped":N}
func AppendSSEDrop(b []byte, dropped uint64) []byte {
	b = append(b, "event: ssos-drop\ndata: {\"dropped\":"...)
	b = strconv.AppendUint(b, dropped, 10)
	return append(b, "}\n\n"...)
}
