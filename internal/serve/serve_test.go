package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"ssos/internal/cluster"
	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/obs"
)

// apiDo issues one request against the test server and returns the
// status code and body.
func apiDo(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// apiOK is apiDo that requires a 2xx status.
func apiOK(t *testing.T, method, url, body string) []byte {
	t.Helper()
	code, b := apiDo(t, method, url, body)
	if code < 200 || code > 299 {
		t.Fatalf("%s %s: status %d: %s", method, url, code, b)
	}
	return b
}

// createSession posts a session spec and returns the assigned ID.
func createSession(t *testing.T, base, spec string) string {
	t.Helper()
	var st Status
	if err := json.Unmarshal(apiOK(t, "POST", base+"/api/sessions", spec), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" {
		t.Fatal("create returned no session ID")
	}
	return st.ID
}

func newTestServer(t *testing.T, o Options) (*Registry, *httptest.Server) {
	t.Helper()
	reg := NewRegistry(o)
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(func() {
		ts.Close()
		reg.Shutdown(context.Background()) //nolint:errcheck
	})
	return reg, ts
}

// TestMachineBridgeByteIdentical is the determinism bridge for machine
// sessions: the same image/seed/command sequence driven through the
// HTTP API must yield the byte-identical JSONL event stream and
// metrics JSON that the ssos-run batch path produces.
func TestMachineBridgeByteIdentical(t *testing.T) {
	const (
		image = "reinstall"
		seed  = 7
		at    = 40000
		total = 120000
	)

	// Batch path, exactly as cmd/ssos-run sequences it.
	img, ok := LookupImage(image)
	if !ok {
		t.Fatal("image missing")
	}
	sys, err := core.New(img.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	sys.Instrument(col)
	sys.Run(at)
	inj := fault.NewInjector(sys.M, seed)
	if err := InjectFault(sys, inj, "os-blast"); err != nil {
		t.Fatal(err)
	}
	sys.Run(total - at)
	var wantEvents bytes.Buffer
	if err := col.WriteJSONL(&wantEvents); err != nil {
		t.Fatal(err)
	}
	sys.ExportMetrics(col.Metrics)
	obs.RecordEpisodes(col.Metrics, obs.FoldEpisodes(col.Events()))
	var wantMetrics bytes.Buffer
	if err := col.Metrics.WriteJSON(&wantMetrics); err != nil {
		t.Fatal(err)
	}

	// Served path: same image, same seed, same step/fault sequence.
	reg, ts := newTestServer(t, Options{Workers: 2})
	id := createSession(t, ts.URL, `{"image":"reinstall","seed":7}`)
	apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/run", `{"steps":40000}`)
	apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/fault", `{"kind":"os-blast"}`)
	apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/run", `{"steps":80000}`)

	gotEvents := apiOK(t, "GET", ts.URL+"/api/sessions/"+id+"/events", "")
	if !bytes.Equal(gotEvents, wantEvents.Bytes()) {
		t.Errorf("served event stream differs from batch:\nserved:\n%s\nbatch:\n%s",
			gotEvents, wantEvents.Bytes())
	}
	if wantEvents.Len() == 0 {
		t.Fatal("bridge vacuous: batch run emitted no events")
	}

	gotMetrics := apiOK(t, "GET", ts.URL+"/api/sessions/"+id+"/metrics", "")
	if !bytes.Equal(gotMetrics, wantMetrics.Bytes()) {
		t.Errorf("served metrics differ from batch:\nserved:\n%s\nbatch:\n%s",
			gotMetrics, wantMetrics.Bytes())
	}

	// Metrics export must be a snapshot, not a mutation: fetching twice
	// must not double-count.
	again := apiOK(t, "GET", ts.URL+"/api/sessions/"+id+"/metrics", "")
	if !bytes.Equal(again, gotMetrics) {
		t.Error("second metrics fetch differs — export mutated collector state")
	}

	// Cursor refetch: ?since=N returns exactly the suffix.
	sess, ok := reg.Get(id)
	if !ok {
		t.Fatal("session vanished")
	}
	if sess.EventCount() >= 3 {
		var wantTail bytes.Buffer
		if err := obs.WriteJSONL(&wantTail, sess.EventsSince(2)); err != nil {
			t.Fatal(err)
		}
		gotTail := apiOK(t, "GET", ts.URL+"/api/sessions/"+id+"/events?since=2", "")
		if !bytes.Equal(gotTail, wantTail.Bytes()) {
			t.Error("?since= cursor refetch differs from EventsSince")
		}
	}
}

// TestClusterBridgeByteIdentical is the determinism bridge for cluster
// sessions, against the ssos-cluster batch sequence.
func TestClusterBridgeByteIdentical(t *testing.T) {
	const (
		seed   = 5
		epochs = 6
	)
	mode, err := cluster.ParseFaultMode("os-blast")
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	c, err := cluster.New(cluster.Config{
		Replicas:  3,
		Approach:  core.ApproachReinstall,
		Seed:      seed,
		Faults:    mode,
		Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(epochs)
	var wantEvents bytes.Buffer
	if err := col.WriteJSONL(&wantEvents); err != nil {
		t.Fatal(err)
	}
	c.FinishObservability()
	obs.RecordEpisodes(col.Metrics, obs.FoldEpisodes(col.Events()))
	var wantMetrics bytes.Buffer
	if err := col.Metrics.WriteJSON(&wantMetrics); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{Workers: 2})
	id := createSession(t, ts.URL,
		`{"kind":"cluster","image":"reinstall","seed":5,"replicas":3,"faults":"os-blast"}`)
	apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/run", `{"epochs":6}`)

	gotEvents := apiOK(t, "GET", ts.URL+"/api/sessions/"+id+"/events", "")
	if !bytes.Equal(gotEvents, wantEvents.Bytes()) {
		t.Errorf("served cluster event stream differs from batch:\nserved:\n%s\nbatch:\n%s",
			gotEvents, wantEvents.Bytes())
	}
	if wantEvents.Len() == 0 {
		t.Fatal("bridge vacuous: batch cluster run emitted no events")
	}
	gotMetrics := apiOK(t, "GET", ts.URL+"/api/sessions/"+id+"/metrics", "")
	if !bytes.Equal(gotMetrics, wantMetrics.Bytes()) {
		t.Errorf("served cluster metrics differ from batch:\nserved:\n%s\nbatch:\n%s",
			gotMetrics, wantMetrics.Bytes())
	}
}

// TestClusterOnDemandStrike checks the fault endpoint lands a strike
// on a cluster session between epochs.
func TestClusterOnDemandStrike(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	id := createSession(t, ts.URL, `{"kind":"cluster","image":"reinstall","seed":3,"replicas":3}`)
	apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/run", `{"epochs":2}`)
	var res FaultResult
	body := apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/fault", `{"kind":"os-blast","replica":1}`)
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Injected) != 1 {
		t.Fatalf("strike reported %v, want one injection", res.Injected)
	}
	var st Status
	if err := json.Unmarshal(apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/run", `{"epochs":2}`), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil || st.Cluster.Epochs != 4 {
		t.Errorf("status after strike+run: %+v, want 4 epochs", st.Cluster)
	}

	// A strike naming a bogus replica or an inert mode must fail.
	if code, _ := apiDo(t, "POST", ts.URL+"/api/sessions/"+id+"/fault", `{"kind":"os-blast","replica":9}`); code != http.StatusBadRequest {
		t.Errorf("bogus replica: status %d, want 400", code)
	}
	if code, _ := apiDo(t, "POST", ts.URL+"/api/sessions/"+id+"/fault", `{"kind":"none"}`); code != http.StatusBadRequest {
		t.Errorf("inert strike: status %d, want 400", code)
	}
}

// evictionTrace drives one fixed operation sequence against a small
// registry and records which sessions fall to the idle sweep.
func evictionTrace(t *testing.T) (evicted []string, surviving []string) {
	t.Helper()
	reg := NewRegistry(Options{MaxSessions: 16, IdleOps: 3, Workers: 1})
	defer reg.Shutdown(context.Background()) //nolint:errcheck

	var ss []*Session
	for i := 0; i < 3; i++ {
		s, err := reg.Create(SessionSpec{Image: "baseline", Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(RunRequest{Steps: 1000}); err != nil {
			t.Fatal(err)
		}
		ss = append(ss, s)
	}
	// Keep the last session warm; the first two age out after exactly
	// IdleOps=3 further operations each (logical clock, no wall time).
	for i := 0; i < 5; i++ {
		reg.Touch(ss[2])
		if _, err := ss[2].Run(RunRequest{Steps: 100}); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range ss {
		if _, ok := reg.Get(s.ID); !ok {
			evicted = append(evicted, s.ID)
			if _, err := s.Status(); !errors.Is(err, ErrEvicted) {
				t.Errorf("evicted session %s: command error = %v, want ErrEvicted", s.ID, err)
			}
		} else {
			surviving = append(surviving, s.ID)
		}
	}
	if got := reg.Evicted(); got != uint64(len(evicted)) {
		t.Errorf("Evicted() = %d, want %d", got, len(evicted))
	}
	return evicted, surviving
}

// TestIdleEvictionDeterministic checks both that idle sessions fall on
// the logical-clock horizon and that the outcome is a pure function of
// the operation sequence: two identical runs evict identical sessions.
func TestIdleEvictionDeterministic(t *testing.T) {
	ev1, sv1 := evictionTrace(t)
	ev2, sv2 := evictionTrace(t)
	if len(ev1) != 2 || len(sv1) != 1 {
		t.Fatalf("trace evicted %v kept %v; want 2 evicted, 1 kept", ev1, sv1)
	}
	if strings.Join(ev1, ",") != strings.Join(ev2, ",") || strings.Join(sv1, ",") != strings.Join(sv2, ",") {
		t.Errorf("eviction not deterministic: run1 evicted %v kept %v, run2 evicted %v kept %v",
			ev1, sv1, ev2, sv2)
	}
}

// TestRegistryCapAndDelete covers ErrFull at the session cap and
// explicit deletion semantics.
func TestRegistryCapAndDelete(t *testing.T) {
	reg := NewRegistry(Options{MaxSessions: 2, IdleOps: -1, Workers: 1})
	defer reg.Shutdown(context.Background()) //nolint:errcheck

	s1, err := reg.Create(SessionSpec{Image: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(SessionSpec{Image: "baseline"}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(SessionSpec{Image: "baseline"}); !errors.Is(err, ErrFull) {
		t.Fatalf("third create: err = %v, want ErrFull", err)
	}
	if !reg.Delete(s1.ID) {
		t.Fatal("delete of live session failed")
	}
	if reg.Delete(s1.ID) {
		t.Error("double delete reported success")
	}
	if _, err := s1.Status(); !errors.Is(err, ErrClosed) {
		t.Errorf("deleted session command: err = %v, want ErrClosed", err)
	}
	if _, err := reg.Create(SessionSpec{Image: "baseline"}); err != nil {
		t.Errorf("create after delete: %v (cap slot not reclaimed)", err)
	}
	if reg.Len() != 2 {
		t.Errorf("Len() = %d, want 2", reg.Len())
	}
}

// TestShutdownFailsFast checks a shut-down registry rejects new work
// and fails open sessions with ErrShutdown, idempotently.
func TestShutdownFailsFast(t *testing.T) {
	reg := NewRegistry(Options{Workers: 1})
	s, err := reg.Create(SessionSpec{Image: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Create(SessionSpec{Image: "baseline"}); !errors.Is(err, ErrShutdown) {
		t.Errorf("create after shutdown: err = %v, want ErrShutdown", err)
	}
	if _, err := s.Status(); !errors.Is(err, ErrShutdown) {
		t.Errorf("session command after shutdown: err = %v, want ErrShutdown", err)
	}
	if err := reg.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestStreamReplayMatchesGolden drives the SSE endpoint end to end:
// the replayed prefix must be exactly the AppendSSE rendering of the
// retained event log, and closing the client must detach the handler.
func TestStreamReplayMatchesGolden(t *testing.T) {
	reg, ts := newTestServer(t, Options{Workers: 1})
	id := createSession(t, ts.URL, `{"image":"reinstall","seed":3}`)
	apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/run", `{"steps":70000}`)

	sess, ok := reg.Get(id)
	if !ok {
		t.Fatal("session missing")
	}
	events := sess.EventsSince(0)
	if len(events) < 2 {
		t.Fatalf("run produced %d events; want enough to stream", len(events))
	}
	var want []byte
	for i, e := range events {
		want = AppendSSE(want, Frame{Seq: uint64(i), Ev: e})
	}

	resp, err := http.Get(ts.URL + "/api/sessions/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	got := make([]byte, len(want))
	if _, err := io.ReadFull(resp.Body, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("SSE replay differs:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if sess.EventCount() != len(events) {
		t.Error("streaming mutated the retained log")
	}
}

// TestAPIErrors pins the error mapping for the common client mistakes.
func TestAPIErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if code, _ := apiDo(t, "POST", ts.URL+"/api/sessions", `{"image":"nope"}`); code != http.StatusBadRequest {
		t.Errorf("unknown image: status %d, want 400", code)
	}
	if code, _ := apiDo(t, "GET", ts.URL+"/api/sessions/zzz", ""); code != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", code)
	}
	if code, _ := apiDo(t, "DELETE", ts.URL+"/api/sessions/zzz", ""); code != http.StatusNotFound {
		t.Errorf("delete unknown session: status %d, want 404", code)
	}
	id := createSession(t, ts.URL, `{"image":"baseline"}`)
	if code, _ := apiDo(t, "POST", ts.URL+"/api/sessions/"+id+"/run", `{"steps":0}`); code != http.StatusBadRequest {
		t.Errorf("zero-step run: status %d, want 400", code)
	}
	if code, _ := apiDo(t, "POST", ts.URL+"/api/sessions/"+id+"/fault", `{"kind":"gamma-ray"}`); code != http.StatusBadRequest {
		t.Errorf("unknown fault: status %d, want 400", code)
	}
	if code, _ := apiDo(t, "GET", ts.URL+"/api/sessions/"+id+"/events?since=-1", ""); code != http.StatusBadRequest {
		t.Errorf("negative cursor: status %d, want 400", code)
	}
	apiOK(t, "DELETE", ts.URL+"/api/sessions/"+id, "")
	if code, _ := apiDo(t, "GET", ts.URL+"/api/sessions/"+id, ""); code != http.StatusNotFound {
		t.Errorf("status of deleted session: status %d, want 404", code)
	}
}

// TestCatalogEndpoints sanity-checks the static catalog routes.
func TestCatalogEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	var imgs []struct{ Name string }
	if err := json.Unmarshal(apiOK(t, "GET", ts.URL+"/api/images", ""), &imgs); err != nil {
		t.Fatal(err)
	}
	if len(imgs) != len(Images()) || imgs[0].Name != "baseline" {
		t.Errorf("images catalog: got %d entries first %q", len(imgs), imgs[0].Name)
	}
	var kinds []string
	if err := json.Unmarshal(apiOK(t, "GET", ts.URL+"/api/faults", ""), &kinds); err != nil {
		t.Fatal(err)
	}
	if len(kinds) != len(FaultKinds()) {
		t.Errorf("fault catalog: got %d kinds, want %d", len(kinds), len(FaultKinds()))
	}
	var st Stats
	if err := json.Unmarshal(apiOK(t, "GET", ts.URL+"/healthz", ""), &st); err != nil {
		t.Fatal(err)
	}
	if st.Workers < 1 {
		t.Errorf("healthz reports %d workers", st.Workers)
	}
}

// TestStressManySessions sustains 500+ concurrent live sessions on a
// bounded worker set, then ages them out via the logical clock. It
// demonstrates the scaling contract: goroutines stay bounded by the
// worker budget (sessions are actors, not goroutine owners), and idle
// eviction reclaims sessions wholesale.
func TestStressManySessions(t *testing.T) {
	const n = 510
	reg := NewRegistry(Options{MaxSessions: n + 16, IdleOps: 4 * n, Workers: 8})
	defer reg.Shutdown(context.Background()) //nolint:errcheck

	baseline := runtime.NumGoroutine()

	var wg sync.WaitGroup
	sessions := make([]*Session, n)
	errs := make([]error, n)
	gate := make(chan struct{}, 32)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gate <- struct{}{}
			defer func() { <-gate }()
			s, err := reg.Create(SessionSpec{Image: "baseline", Seed: int64(i + 1)})
			if err != nil {
				errs[i] = err
				return
			}
			sessions[i] = s
			reg.Touch(s)
			if _, err := s.Run(RunRequest{Steps: 200}); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if got := reg.Len(); got < 500 {
		t.Fatalf("sustained %d concurrent sessions, want >= 500", got)
	}
	// The worker set, not the session count, bounds goroutines.
	if g := runtime.NumGoroutine(); g > baseline+64 {
		t.Errorf("goroutines grew to %d (baseline %d) for %d sessions", g, baseline, n)
	}

	// Age every session but one out: the keeper's touches advance the
	// logical clock past everyone else's idle horizon.
	keeper := sessions[0]
	for i := 0; i < 4*n+n+1; i++ {
		reg.Touch(keeper)
	}
	if got := reg.Len(); got != 1 {
		t.Errorf("after idle sweep: %d sessions live, want 1 (the keeper)", got)
	}
	if ev := reg.Evicted(); ev != n-1 {
		t.Errorf("Evicted() = %d, want %d", ev, n-1)
	}
	if _, ok := reg.Get(keeper.ID); !ok {
		t.Error("keeper was evicted despite being touched")
	}
	if _, err := sessions[1].Status(); !errors.Is(err, ErrEvicted) {
		t.Errorf("aged-out session error = %v, want ErrEvicted", err)
	}
}
