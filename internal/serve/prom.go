package serve

import (
	"net/http"
	"sort"
	"strconv"

	"ssos/internal/obs"
)

// GET /metrics — Prometheus text exposition (format 0.0.4) for scrape-
// based monitoring of a running daemon: registry health, per-session
// event counts, and the recovery-episode statistics the live trackers
// reconstruct (episode counts, in-flight episodes, latency quantiles
// split by fault class and recovery action).
//
// The handler reads only the concurrent-safe side of each session (the
// collector length and the episode tracker) — never the command queue —
// so a scrape returns immediately even while every session is mid-run,
// and scraping cannot perturb the determinism bridge: it neither ticks
// the registry's logical clock nor touches a simulation.
//
// Quantiles are computed with obs.Quantile over the same per-episode
// latencies obs.RecordEpisodes feeds the batch registries, so a scraped
// quantile equals the corresponding histogram summary in the session's
// /metrics JSON (and in the batch CLIs' -metrics-out) at the same point
// of the run.

// promQuantiles are the exported summary quantiles, as (label, pct)
// pairs for obs.Quantile.
var promQuantiles = []struct {
	label string
	pct   int
}{
	{"0.5", 50},
	{"0.9", 90},
	{"0.99", 99},
}

// sessionEpStats is the scrape-time digest of one session's episodes
// and engine telemetry.
type sessionEpStats struct {
	id                                   string
	events                               int
	total, resolved, preempted, inFlight int
	overall                              []uint64
	faultKeys                            []string
	fault                                map[string][]uint64
	actionKeys                           []string
	action                               map[string][]uint64

	// Superblock-engine mirrors (machine sessions only).
	machine                         bool
	blocks, blockInstrs, blockBails uint64
}

// digestSession folds a session's episode snapshot for the scrape.
// Split keys are recorded in first-seen order and sorted afterwards, so
// output order never depends on map iteration.
func digestSession(sess *Session) *sessionEpStats {
	st := &sessionEpStats{
		id:     sess.ID,
		events: sess.EventCount(),
		fault:  make(map[string][]uint64),
		action: make(map[string][]uint64),
	}
	st.blocks, st.blockInstrs, st.blockBails, st.machine = sess.BlockTelemetry()
	for _, ep := range sess.Episodes() {
		st.total++
		switch {
		case ep.Preempted:
			st.preempted++
		case !ep.Resolved:
			st.inFlight++
		default:
			st.resolved++
			lat := ep.Latency()
			st.overall = append(st.overall, lat)
			if _, ok := st.fault[ep.FaultClass]; !ok {
				st.faultKeys = append(st.faultKeys, ep.FaultClass)
			}
			st.fault[ep.FaultClass] = append(st.fault[ep.FaultClass], lat)
			if _, ok := st.action[ep.Resolution]; !ok {
				st.actionKeys = append(st.actionKeys, ep.Resolution)
			}
			st.action[ep.Resolution] = append(st.action[ep.Resolution], lat)
		}
	}
	sort.Strings(st.faultKeys)
	sort.Strings(st.actionKeys)
	return st
}

// promWriter accumulates one exposition document.
type promWriter struct {
	b []byte
}

// family starts a metric family: HELP + TYPE header.
func (p *promWriter) family(name, help, typ string) {
	p.b = append(p.b, "# HELP "...)
	p.b = append(p.b, name...)
	p.b = append(p.b, ' ')
	p.b = append(p.b, help...)
	p.b = append(p.b, "\n# TYPE "...)
	p.b = append(p.b, name...)
	p.b = append(p.b, ' ')
	p.b = append(p.b, typ...)
	p.b = append(p.b, '\n')
}

// sample emits one sample line. labels must be pre-rendered
// (`key="value",...`) or empty.
func (p *promWriter) sample(name, labels string, value float64) {
	p.b = append(p.b, name...)
	if labels != "" {
		p.b = append(p.b, '{')
		p.b = append(p.b, labels...)
		p.b = append(p.b, '}')
	}
	p.b = append(p.b, ' ')
	p.b = strconv.AppendFloat(p.b, value, 'g', -1, 64)
	p.b = append(p.b, '\n')
}

// summary emits a quantile summary for sorted samples: one sample per
// promQuantile plus _sum and _count, and a separate explicit _max.
func (p *promWriter) summary(name, labels string, sorted []uint64) {
	for _, q := range promQuantiles {
		p.sample(name, labels+`,quantile="`+q.label+`"`, float64(obs.Quantile(sorted, q.pct)))
	}
	var sum float64
	for _, v := range sorted {
		sum += float64(v)
	}
	p.sample(name+"_sum", labels, sum)
	p.sample(name+"_count", labels, float64(len(sorted)))
	p.sample(name+"_max", labels, float64(sorted[len(sorted)-1]))
}

// promLabel renders one escaped label pair.
func promLabel(key, value string) string {
	return key + "=" + strconv.Quote(value)
}

func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.Reg.Stats()
	var digests []*sessionEpStats
	for _, sess := range s.Reg.List() { // creation order: deterministic
		digests = append(digests, digestSession(sess))
	}

	p := &promWriter{}
	p.family("ssos_sessions", "Live hosted sessions.", "gauge")
	p.sample("ssos_sessions", "", float64(stats.Sessions))
	p.family("ssos_sessions_created_total", "Sessions created over the daemon lifetime.", "counter")
	p.sample("ssos_sessions_created_total", "", float64(stats.Created))
	p.family("ssos_sessions_evicted_total", "Sessions evicted idle over the daemon lifetime.", "counter")
	p.sample("ssos_sessions_evicted_total", "", float64(stats.Evicted))
	p.family("ssos_registry_ops_total", "Mutating API operations (the registry's logical clock).", "counter")
	p.sample("ssos_registry_ops_total", "", float64(stats.Clock))
	p.family("ssos_workers", "Simulation worker goroutines.", "gauge")
	p.sample("ssos_workers", "", float64(stats.Workers))

	p.family("ssos_session_events_total", "Structured events emitted by the session.", "counter")
	for _, d := range digests {
		p.sample("ssos_session_events_total", promLabel("session", d.id), float64(d.events))
	}
	p.family("ssos_session_blocks_total", "Superblocks entered by the session's machine.", "counter")
	for _, d := range digests {
		if d.machine {
			p.sample("ssos_session_blocks_total", promLabel("session", d.id), float64(d.blocks))
		}
	}
	p.family("ssos_session_block_instrs_total", "Instructions retired through superblock entries.", "counter")
	for _, d := range digests {
		if d.machine {
			p.sample("ssos_session_block_instrs_total", promLabel("session", d.id), float64(d.blockInstrs))
		}
	}
	p.family("ssos_session_block_bails_total", "Superblock validation bails back to the interpreter.", "counter")
	for _, d := range digests {
		if d.machine {
			p.sample("ssos_session_block_bails_total", promLabel("session", d.id), float64(d.blockBails))
		}
	}
	p.family("ssos_episodes_total", "Recovery episodes opened (one per injected-fault burst).", "counter")
	for _, d := range digests {
		p.sample("ssos_episodes_total", promLabel("session", d.id), float64(d.total))
	}
	p.family("ssos_episodes_resolved_total", "Episodes that confirmed recovery (legality or rejoin).", "counter")
	for _, d := range digests {
		p.sample("ssos_episodes_resolved_total", promLabel("session", d.id), float64(d.resolved))
	}
	p.family("ssos_episodes_preempted_total", "Episodes cut short by a newer fault on the same scope.", "counter")
	for _, d := range digests {
		p.sample("ssos_episodes_preempted_total", promLabel("session", d.id), float64(d.preempted))
	}
	p.family("ssos_episodes_in_flight", "Episodes still awaiting resolution.", "gauge")
	for _, d := range digests {
		p.sample("ssos_episodes_in_flight", promLabel("session", d.id), float64(d.inFlight))
	}

	p.family("ssos_episode_latency_steps", "Resolved-episode latency in machine steps.", "summary")
	for _, d := range digests {
		if len(d.overall) == 0 {
			continue
		}
		sortSamples(d.overall)
		p.summary("ssos_episode_latency_steps", promLabel("session", d.id), d.overall)
	}
	p.family("ssos_episode_fault_latency_steps", "Resolved-episode latency by fault class.", "summary")
	for _, d := range digests {
		for _, k := range d.faultKeys {
			xs := d.fault[k]
			sortSamples(xs)
			p.summary("ssos_episode_fault_latency_steps",
				promLabel("session", d.id)+","+promLabel("fault", k), xs)
		}
	}
	p.family("ssos_episode_action_latency_steps", "Resolved-episode latency by recovery action.", "summary")
	for _, d := range digests {
		for _, k := range d.actionKeys {
			xs := d.action[k]
			sortSamples(xs)
			p.summary("ssos_episode_action_latency_steps",
				promLabel("session", d.id)+","+promLabel("action", k), xs)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(p.b) //nolint:errcheck // client gone mid-write
}

// sortSamples orders latencies ascending for obs.Quantile.
func sortSamples(xs []uint64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// handleEpisodes serves the session's reconstructed recovery episodes
// as JSON. Like /events it reads the live tracker directly, so it works
// mid-run and does not affect idle accounting.
func (s *Server) handleEpisodes(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	eps := sess.Episodes()
	if eps == nil {
		eps = []obs.Episode{}
	}
	writeJSON(w, http.StatusOK, eps)
}
