package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"ssos/internal/obs"
)

// Server is the HTTP face of a Registry. Routes:
//
//	GET    /healthz                   registry health snapshot
//	GET    /api/images                named guest image catalog
//	GET    /api/faults                injectable machine fault classes
//	POST   /api/sessions              create a session (SessionSpec body)
//	GET    /api/sessions              list sessions (registry view)
//	GET    /api/sessions/{id}         session status
//	POST   /api/sessions/{id}/run     advance ({"steps":N} or {"epochs":N})
//	POST   /api/sessions/{id}/fault   inject ({"kind":"os-blast"[,"replica":i]})
//	GET    /api/sessions/{id}/metrics stabilization metrics (JSON)
//	GET    /api/sessions/{id}/events  retained event stream (JSONL; ?since=N)
//	GET    /api/sessions/{id}/episodes reconstructed recovery episodes (JSON)
//	GET    /api/sessions/{id}/stream  live event stream (SSE; ?since=N replays)
//	DELETE /api/sessions/{id}         close and remove the session
//	GET    /metrics                   Prometheus text exposition (scrape)
//
// The events endpoint's body is byte-identical to the batch CLIs'
// -events-out file for the same image/seed/command sequence — that is
// the service's core contract, enforced by the bridge tests and the CI
// smoke job.
type Server struct {
	Reg *Registry
	mux *http.ServeMux
}

// NewServer wires the routes onto a fresh mux.
func NewServer(reg *Registry) *Server {
	s := &Server{Reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/images", s.handleImages)
	s.mux.HandleFunc("GET /api/faults", s.handleFaults)
	s.mux.HandleFunc("POST /api/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /api/sessions", s.handleList)
	s.mux.HandleFunc("GET /api/sessions/{id}", s.handleStatus)
	s.mux.HandleFunc("POST /api/sessions/{id}/run", s.handleRun)
	s.mux.HandleFunc("POST /api/sessions/{id}/fault", s.handleFault)
	s.mux.HandleFunc("GET /api/sessions/{id}/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /api/sessions/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /api/sessions/{id}/episodes", s.handleEpisodes)
	s.mux.HandleFunc("GET /api/sessions/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE /api/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON renders one response document.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-write; nothing to do
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

// fail maps service errors onto HTTP statuses.
func fail(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrFull):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrShutdown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrEvicted), errors.Is(err, ErrClosed):
		status = http.StatusGone
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Reg.Stats())
}

// imageInfo is one /api/images entry.
type imageInfo struct {
	Name string `json:"name"`
	Desc string `json:"desc"`
}

func (s *Server) handleImages(w http.ResponseWriter, r *http.Request) {
	out := make([]imageInfo, 0, len(images))
	for _, img := range Images() {
		out = append(out, imageInfo{Name: img.Name, Desc: img.Desc})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, FaultKinds())
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var sp SessionSpec
	if err := decodeBody(r, &sp); err != nil {
		fail(w, err)
		return
	}
	sess, err := s.Reg.Create(sp)
	if err != nil {
		fail(w, err)
		return
	}
	st, err := sess.Status()
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

// listEntry is the registry-level session view: no live machine state,
// so listing never waits behind a running simulation.
type listEntry struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	Image       string `json:"image"`
	Seed        int64  `json:"seed"`
	Events      int    `json:"events"`
	CreatedOp   uint64 `json:"created_op"`
	LastTouchOp uint64 `json:"last_touch_op"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	sessions := s.Reg.List()
	out := make([]listEntry, 0, len(sessions))
	for _, sess := range sessions {
		created, touched := s.Reg.stamps(sess)
		out = append(out, listEntry{
			ID:          sess.ID,
			Kind:        sess.Spec.Kind,
			Image:       sess.Spec.Image,
			Seed:        sess.Spec.Seed,
			Events:      sess.EventCount(),
			CreatedOp:   created,
			LastTouchOp: touched,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// session resolves the {id} path parameter.
func (s *Server) session(w http.ResponseWriter, r *http.Request) (*Session, bool) {
	id := r.PathValue("id")
	sess, ok := s.Reg.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no session %q", id)})
		return nil, false
	}
	return sess, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	st, err := sess.Status()
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req RunRequest
	if err := decodeBody(r, &req); err != nil {
		fail(w, err)
		return
	}
	s.Reg.Touch(sess)
	st, err := sess.Run(req)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFault(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	var req FaultRequest
	if err := decodeBody(r, &req); err != nil {
		fail(w, err)
		return
	}
	s.Reg.Touch(sess)
	res, err := sess.Inject(req)
	if err != nil {
		fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	m, err := sess.Metrics()
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	m.WriteJSON(w) //nolint:errcheck // client gone mid-write
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	since, err := sinceParam(r)
	if err != nil {
		fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	obs.WriteJSONL(w, sess.EventsSince(since)) //nolint:errcheck // client gone mid-write
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Reg.Delete(id) {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no session %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// handleStream serves the live SSE feed. It subscribes first, then
// replays the retained log from ?since=, then switches to live frames,
// deduplicating the overlap by sequence number — so the client sees
// every event exactly once even across races with an active run. A
// slow client gets ssos-drop frames naming exactly how many live
// frames its ring lost; the dropped events themselves remain
// refetchable from /events by cursor.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(w, r)
	if !ok {
		return
	}
	since, err := sinceParam(r)
	if err != nil {
		fail(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, apiError{Error: "streaming unsupported"})
		return
	}
	sub := sess.Subscribe()
	defer sess.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	var buf []byte
	next := uint64(since)
	for _, e := range sess.EventsSince(since) {
		buf = AppendSSE(buf[:0], Frame{Seq: next, Ev: e})
		if _, err := w.Write(buf); err != nil {
			return
		}
		next++
	}
	flusher.Flush()

	var frames []Frame
	cancel := r.Context().Done()
	for {
		if !sub.Wait(cancel) {
			return // client went away
		}
		var dropped uint64
		var closed bool
		frames, dropped, closed = sub.Take(frames)
		if dropped > 0 {
			buf = AppendSSEDrop(buf[:0], dropped)
			if _, err := w.Write(buf); err != nil {
				return
			}
		}
		for _, f := range frames {
			if f.Seq < next {
				continue // already replayed from the retained log
			}
			buf = AppendSSE(buf[:0], f)
			if _, err := w.Write(buf); err != nil {
				return
			}
			next = f.Seq + 1
		}
		if len(frames) > 0 || dropped > 0 {
			flusher.Flush()
		}
		if closed && len(frames) == 0 {
			return // session deleted/evicted and ring fully drained
		}
	}
}

// decodeBody parses an optional JSON body (empty bodies decode to the
// zero request, so `curl -X POST` without -d works for defaults).
func decodeBody(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("request body: %w", err)
	}
	return nil
}

// sinceParam parses the ?since= cursor.
func sinceParam(r *http.Request) (int, error) {
	q := r.URL.Query().Get("since")
	if q == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad since cursor %q", q)
	}
	return n, nil
}
