package serve

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"testing"

	"ssos/internal/core"
	"ssos/internal/guest"
)

// TestReachableImagesHaveLintSpecs is the spec-completeness check: every
// ROM image a client can reach — through the named image catalog (the
// construction path of ssos-run and the daemon) or through the ring
// fleet's per-node builds (ssos-cluster -ring) — must be byte-identical
// to some entry of guest.LintImages(), so the bytes the simulator
// installs are bytes the lint suite proves. A builder variant added to
// core without a matching lintspec entry fails here.
func TestReachableImagesHaveLintSpecs(t *testing.T) {
	lint, err := guest.LintImages()
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		n   int
		sum [sha256.Size]byte
	}
	index := map[key]string{}
	lens := map[int]bool{}
	for _, img := range lint {
		index[key{len(img.Bytes), sha256.Sum256(img.Bytes)}] = img.Name
		lens[len(img.Bytes)] = true
	}
	var sizes []int
	for n := range lens {
		sizes = append(sizes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes))) // longest match wins
	maxLen := sizes[0]

	// lookup matches a peeked ROM region against the lint set by prefix
	// (spec images carry only their own bytes; the mapped region may be
	// longer).
	lookup := func(region []byte) (string, bool) {
		for _, n := range sizes {
			if n > len(region) {
				continue
			}
			if name, ok := index[key{n, sha256.Sum256(region[:n])}]; ok {
				return name, true
			}
		}
		return "", false
	}

	peek := func(s *core.System, start uint32, size int) []byte {
		b := make([]byte, size)
		for off := range b {
			b[off] = s.M.Bus.Peek(start + uint32(off))
		}
		return b
	}
	allZero := func(b []byte) bool {
		for _, x := range b {
			if x != 0 {
				return false
			}
		}
		return true
	}

	matched := 0
	check := func(label string, cfg core.Config) {
		s, err := core.New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		regions := []struct {
			name  string
			start uint32
			size  int
		}{
			{"os-image", uint32(guest.OSROMSeg) << 4, maxLen},
			{"handler-rom", uint32(guest.HandlerROMSeg) << 4, maxLen},
		}
		for i := 0; i < guest.NumProcs; i++ {
			regions = append(regions, struct {
				name  string
				start uint32
				size  int
			}{fmt.Sprintf("proc-%d", i), uint32(guest.ProcROMSeg(i)) << 4, guest.ProcRegionSize})
		}
		for _, r := range regions {
			b := peek(s, r.start, r.size)
			if allZero(b) {
				continue // this approach maps no ROM here
			}
			if name, ok := lookup(b); ok {
				matched++
				_ = name
			} else {
				t.Errorf("%s: installed %s ROM matches no lint spec", label, r.name)
			}
		}
	}

	// Every named image of the catalog — the ssos-run / daemon surface.
	for _, img := range Images() {
		check("image "+img.Name, img.Cfg)
	}
	// The flag-reachable variants ssos-run adds on top of the catalog.
	check("scheduler -protect", core.Config{Approach: core.ApproachScheduler, ProtectMemory: true})
	// Every per-node build the ring fleet can request (ssos-cluster -ring).
	for _, v := range guest.RingVariants() {
		for n := 2; n <= guest.MaxMailboxNodes; n++ {
			for node := 0; node < n; node++ {
				check(fmt.Sprintf("fleet %v n=%d node=%d", v, n, node), core.Config{
					Approach: core.ApproachScheduler,
					Workload: core.MailboxWorkload(v),
					RingNode: node, RingNodes: n,
				})
			}
		}
	}

	if matched < 100 {
		t.Fatalf("only %d ROM regions matched — the check is not seeing installed images", matched)
	}
	t.Logf("%d installed ROM regions matched lint specs", matched)
}
