package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ssos/internal/cluster"
	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/obs"
)

// Session errors. ErrClosed covers explicit deletion and daemon
// shutdown; ErrEvicted is the idle-eviction flavor so clients can tell
// "you closed it" from "it aged out".
var (
	ErrClosed  = errors.New("session closed")
	ErrEvicted = errors.New("session evicted (idle)")
)

// Session is one hosted simulation: a machine (core.System) or a
// cluster (cluster.Cluster), its event collector, its SSE router, and
// a command queue. All mutation — stepping, fault injection, metrics
// export — runs as commands on the registry's worker set, one at a
// time per session, so the deterministic single-goroutine contract of
// the underlying machinery is preserved no matter how many clients
// poke the API concurrently.
type Session struct {
	// ID is the registry-assigned identifier ("s1", "s2", ...).
	ID string
	// Spec echoes the creation request after defaulting.
	Spec SessionSpec

	reg     *Registry
	col     *obs.Collector
	router  *Router
	tracker *obs.EpisodeTracker

	// Exactly one of sys/clu is set, per Spec.Kind.
	sys *core.System
	inj *fault.Injector
	clu *cluster.Cluster

	mu sync.Mutex
	//ssos:guarded-by mu
	queue []*command
	//ssos:guarded-by mu
	scheduled bool
	//ssos:guarded-by mu
	closed bool
	//ssos:guarded-by mu
	closeErr error

	// blocks/blockInstrs/blockBails mirror the machine's superblock
	// telemetry for the concurrent-safe Prometheus scrape: refreshed at
	// the end of every Run command (the only command that advances the
	// counters), read without touching the command queue. Always zero
	// for cluster sessions.
	blocks      atomic.Uint64
	blockInstrs atomic.Uint64
	blockBails  atomic.Uint64

	// created and lastTouch are registry logical-clock stamps, guarded
	// by the registry mutex (not this one).
	created   uint64
	lastTouch uint64
}

// command is one queued mutation and its completion signal.
type command struct {
	fn     func() (interface{}, error)
	done   chan struct{}
	result interface{}
	err    error
}

// newSession builds the simulation a spec describes. The construction
// path is shared with the batch CLIs (LookupImage + core.New /
// cluster.New), which is half of the determinism bridge; the serialized
// command loop is the other half.
func newSession(id string, sp SessionSpec, ringSize int) (*Session, error) {
	img, err := sp.normalize()
	if err != nil {
		return nil, err
	}
	s := &Session{
		ID:      id,
		Spec:    sp,
		col:     obs.NewCollector(),
		router:  NewRouter(ringSize),
		tracker: obs.NewEpisodeTracker(),
	}
	// The hook runs under the collector lock; both consumers are cheap
	// and never call back into the collector. Feeding the tracker here —
	// rather than from a reader — is what keeps the live episode fold in
	// lockstep with the event stream: a client that observes event idx
	// also observes every episode transition that event caused.
	s.col.Hook = func(idx int, e obs.Event) {
		s.tracker.Feed(e)
		s.router.Publish(uint64(idx), e)
	}
	switch sp.Kind {
	case KindMachine:
		cfg := img.Cfg
		if sp.Period > 0 {
			cfg.WatchdogPeriod = sp.Period
		}
		cfg.DisableNMICounter = sp.StockNMI
		sys, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		sys.Instrument(s.col)
		s.sys = sys
		// The injector is seeded at construction but draws randomness
		// only per injection, so a session that injects at step T sees
		// the exact fault bytes ssos-run -seed would.
		s.inj = fault.NewInjector(sys.M, sp.Seed)
	case KindCluster:
		if img.Cfg != (core.Config{Approach: img.Cfg.Approach}) {
			return nil, fmt.Errorf("image %q carries machine-only options; cluster sessions take plain approach images", img.Name)
		}
		mode, err := cluster.ParseFaultMode(faultsOrNone(sp.Faults))
		if err != nil {
			return nil, err
		}
		clu, err := cluster.New(cluster.Config{
			Replicas:    sp.Replicas,
			Approach:    img.Cfg.Approach,
			EpochSteps:  sp.EpochSteps,
			Seed:        sp.Seed,
			Faults:      mode,
			StrikeEvery: sp.StrikeEvery,
			StrikeProb:  sp.StrikeProb,
			Collector:   s.col,
		})
		if err != nil {
			return nil, err
		}
		s.clu = clu
	}
	return s, nil
}

func faultsOrNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// do enqueues one command and waits for the worker set to execute it.
// Commands on one session run strictly in submission order, one at a
// time; a closed session fails immediately with its closure error.
func (s *Session) do(fn func() (interface{}, error)) (interface{}, error) {
	cmd := &command{fn: fn, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		err := s.closeErr
		s.mu.Unlock()
		return nil, err
	}
	s.queue = append(s.queue, cmd)
	schedule := !s.scheduled
	s.scheduled = true
	s.mu.Unlock()
	if schedule {
		s.reg.enqueue(s)
	}
	<-cmd.done
	return cmd.result, cmd.err
}

// drain executes the session's queued commands on the calling worker
// goroutine until the queue is empty, then yields the scheduled slot.
func (s *Session) drain() {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.scheduled = false
			s.mu.Unlock()
			return
		}
		cmd := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		cmd.result, cmd.err = cmd.fn()
		close(cmd.done)
	}
}

// close marks the session closed with the given error and fails every
// queued command. A command already executing finishes normally (the
// simulation is never interrupted mid-step); everything behind it
// fails fast. Idempotent.
func (s *Session) close(err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.closeErr = err
	flushed := s.queue
	s.queue = nil
	s.mu.Unlock()
	for _, cmd := range flushed {
		cmd.err = err
		close(cmd.done)
	}
	s.router.Close()
}

// RunRequest asks to advance a session: Steps for machine sessions,
// Epochs for cluster sessions.
type RunRequest struct {
	Steps  int `json:"steps,omitempty"`
	Epochs int `json:"epochs,omitempty"`
}

// FaultRequest asks for one on-demand injection. Kind is a machine
// fault class (FaultKinds) for machine sessions or a cluster strike
// mode (bitflip|os-blast|cpu-blast|blast) for cluster sessions;
// Replica selects the strike target in a cluster.
type FaultRequest struct {
	Kind    string `json:"kind"`
	Replica int    `json:"replica,omitempty"`
}

// FaultResult reports the faults an injection request landed.
type FaultResult struct {
	Injected []string `json:"injected"`
}

// MachineStatus is the machine-session slice of a Status. Blocks,
// BlockInstrs and BlockBails are superblock-engine telemetry: how much
// of the run retired through batch-validated blocks and how often
// validation bailed to the interpreter.
type MachineStatus struct {
	Steps       uint64 `json:"steps"`
	Instrs      uint64 `json:"instrs"`
	NMIs        uint64 `json:"nmis"`
	IRQs        uint64 `json:"irqs"`
	Exceptions  uint64 `json:"exceptions"`
	Resets      uint64 `json:"resets"`
	Heartbeats  uint64 `json:"heartbeats"`
	Blocks      uint64 `json:"blocks"`
	BlockInstrs uint64 `json:"block_instrs"`
	BlockBails  uint64 `json:"block_bails"`
}

// ClusterStatus is the cluster-session slice of a Status.
type ClusterStatus struct {
	Replicas     int     `json:"replicas"`
	Quorum       int     `json:"quorum"`
	Epochs       int     `json:"epochs"`
	LegalEpochs  int     `json:"legal_epochs"`
	Availability float64 `json:"availability"`
	Evictions    int     `json:"evictions"`
	FreshBoots   int     `json:"fresh_boots"`
}

// Status is a session snapshot: identity, retention counters, and the
// kind-specific progress block.
type Status struct {
	ID          string         `json:"id"`
	Kind        string         `json:"kind"`
	Image       string         `json:"image"`
	Seed        int64          `json:"seed"`
	Events      int            `json:"events"`
	Subscribers int            `json:"subscribers"`
	CreatedOp   uint64         `json:"created_op"`
	LastTouchOp uint64         `json:"last_touch_op"`
	Machine     *MachineStatus `json:"machine,omitempty"`
	Cluster     *ClusterStatus `json:"cluster,omitempty"`
}

// status assembles a Status. Must run as a command (it reads live
// machine state).
func (s *Session) status() *Status {
	st := &Status{
		ID:          s.ID,
		Kind:        s.Spec.Kind,
		Image:       s.Spec.Image,
		Seed:        s.Spec.Seed,
		Events:      s.col.Len(),
		Subscribers: s.router.Subscribers(),
	}
	st.CreatedOp, st.LastTouchOp = s.reg.stamps(s)
	switch {
	case s.sys != nil:
		m := &MachineStatus{
			Steps:       s.sys.M.Stats.Steps,
			Instrs:      s.sys.M.Stats.Instrs,
			NMIs:        s.sys.M.Stats.NMIs,
			IRQs:        s.sys.M.Stats.IRQs,
			Exceptions:  s.sys.M.Stats.Exceptions,
			Resets:      s.sys.M.Stats.Resets,
			Blocks:      s.sys.M.Stats.Blocks,
			BlockInstrs: s.sys.M.Stats.BlockInstrs,
			BlockBails:  s.sys.M.Stats.BlockBails,
		}
		if s.sys.Heartbeat != nil {
			m.Heartbeats = s.sys.Heartbeat.Total()
		}
		st.Machine = m
	case s.clu != nil:
		sum := s.clu.Summary()
		st.Cluster = &ClusterStatus{
			Replicas:     sum.Replicas,
			Quorum:       s.clu.Quorum(),
			Epochs:       sum.Epochs,
			LegalEpochs:  sum.LegalEpochs,
			Availability: sum.Availability,
			Evictions:    sum.Evictions,
			FreshBoots:   sum.FreshBoots,
		}
	}
	return st
}

// Status returns a session snapshot, serialized with the command loop.
func (s *Session) Status() (*Status, error) {
	r, err := s.do(func() (interface{}, error) { return s.status(), nil })
	if err != nil {
		return nil, err
	}
	return r.(*Status), nil
}

// Run advances the session per the request and returns the resulting
// status.
func (s *Session) Run(req RunRequest) (*Status, error) {
	r, err := s.do(func() (interface{}, error) {
		switch {
		case s.sys != nil:
			if req.Steps <= 0 {
				return nil, fmt.Errorf("machine session: run wants steps > 0")
			}
			s.sys.Run(req.Steps)
			s.blocks.Store(s.sys.M.Stats.Blocks)
			s.blockInstrs.Store(s.sys.M.Stats.BlockInstrs)
			s.blockBails.Store(s.sys.M.Stats.BlockBails)
		case s.clu != nil:
			if req.Epochs <= 0 {
				return nil, fmt.Errorf("cluster session: run wants epochs > 0")
			}
			s.clu.Run(req.Epochs)
		}
		return s.status(), nil
	})
	if err != nil {
		return nil, err
	}
	return r.(*Status), nil
}

// Inject lands one on-demand fault.
func (s *Session) Inject(req FaultRequest) (*FaultResult, error) {
	r, err := s.do(func() (interface{}, error) {
		switch {
		case s.sys != nil:
			before := len(s.inj.Log)
			if err := InjectFault(s.sys, s.inj, req.Kind); err != nil {
				return nil, err
			}
			res := &FaultResult{}
			for _, rec := range s.inj.Log[before:] {
				res.Injected = append(res.Injected, rec.String())
			}
			return res, nil
		default:
			mode, err := cluster.ParseFaultMode(req.Kind)
			if err != nil {
				return nil, err
			}
			if mode == cluster.ModeNone {
				return nil, fmt.Errorf("fault kind %q injects nothing", req.Kind)
			}
			if err := s.clu.Strike(req.Replica, mode); err != nil {
				return nil, err
			}
			return &FaultResult{Injected: []string{
				fmt.Sprintf("replica %d %v", req.Replica, mode),
			}}, nil
		}
	})
	if err != nil {
		return nil, err
	}
	return r.(*FaultResult), nil
}

// Metrics returns the session's stabilization-metrics registry,
// assembled exactly as the batch CLIs would at this point in the run:
// the collector registry plus the machine counters (machine sessions)
// or the per-replica merge and availability gauges (cluster sessions),
// plus the episode counters and latency histograms folded from the
// live tracker — the same RecordEpisodes the CLIs run post-hoc, so the
// determinism bridge extends to the episode metrics.
func (s *Session) Metrics() (*obs.Metrics, error) {
	r, err := s.do(func() (interface{}, error) {
		var snap *obs.Metrics
		switch {
		case s.sys != nil:
			snap = s.col.MetricsSnapshot()
			s.sys.ExportMetrics(snap)
		default:
			snap = s.clu.MetricsSnapshot()
		}
		obs.RecordEpisodes(snap, s.tracker.Episodes())
		return snap, nil
	})
	if err != nil {
		return nil, err
	}
	return r.(*obs.Metrics), nil
}

// Episodes returns the recovery episodes reconstructed so far,
// in-flight ones included. Like EventsSince it reads the live tracker
// directly — no command, safe mid-run.
func (s *Session) Episodes() []obs.Episode { return s.tracker.Episodes() }

// EpisodesInFlight returns the number of unresolved episodes.
func (s *Session) EpisodesInFlight() int { return s.tracker.InFlight() }

// BlockTelemetry returns the superblock-engine counters mirrored at
// the last Run command, and whether this is a machine session. Reads
// the atomic mirrors directly — no command, safe mid-run.
func (s *Session) BlockTelemetry() (blocks, instrs, bails uint64, ok bool) {
	return s.blocks.Load(), s.blockInstrs.Load(), s.blockBails.Load(), s.sys != nil
}

// EventsSince returns the retained event stream from the given cursor.
// It reads the concurrent-safe collector directly — no command, so it
// works even mid-run and does not affect idle accounting.
func (s *Session) EventsSince(cursor int) []obs.Event {
	return s.col.EventsSince(cursor)
}

// EventCount returns the number of retained events.
func (s *Session) EventCount() int { return s.col.Len() }

// Subscribe attaches a live event subscriber.
func (s *Session) Subscribe() *Subscriber { return s.router.Subscribe() }

// Unsubscribe detaches a subscriber.
func (s *Session) Unsubscribe(sub *Subscriber) { s.router.Unsubscribe(sub) }
