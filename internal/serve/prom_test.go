package serve

import (
	"encoding/json"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/obs"
)

// runBridgePair drives the canonical machine scenario (reinstall image,
// seed 7, os-blast at 40000 of 120000 steps) through both the batch
// path and a served session, returning the batch collector and the
// served session's base URL pieces.
func runBridgePair(t *testing.T) (*obs.Collector, string, string) {
	t.Helper()
	img, ok := LookupImage("reinstall")
	if !ok {
		t.Fatal("image missing")
	}
	sys, err := core.New(img.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector()
	sys.Instrument(col)
	sys.Run(40000)
	inj := fault.NewInjector(sys.M, 7)
	if err := InjectFault(sys, inj, "os-blast"); err != nil {
		t.Fatal(err)
	}
	sys.Run(80000)

	_, ts := newTestServer(t, Options{Workers: 2})
	id := createSession(t, ts.URL, `{"image":"reinstall","seed":7}`)
	apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/run", `{"steps":40000}`)
	apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/fault", `{"kind":"os-blast"}`)
	apiOK(t, "POST", ts.URL+"/api/sessions/"+id+"/run", `{"steps":80000}`)
	return col, ts.URL, id
}

// TestEpisodesEndpointMatchesBatchFold: the served episode list is the
// same reconstruction the batch CLIs compute with obs.FoldEpisodes over
// the same event stream.
func TestEpisodesEndpointMatchesBatchFold(t *testing.T) {
	col, base, id := runBridgePair(t)
	want := obs.FoldEpisodes(col.Events())
	if len(want) == 0 {
		t.Fatal("bridge vacuous: batch fold found no episodes")
	}

	var got []obs.Episode
	if err := json.Unmarshal(apiOK(t, "GET", base+"/api/sessions/"+id+"/episodes", ""), &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("served episodes differ from batch fold:\nserved: %+v\nbatch:  %+v", got, want)
	}
	if !got[0].Resolved {
		t.Errorf("scenario episode unresolved: %+v", got[0])
	}
}

// promValue extracts one sample value from an exposition document by
// its exact name-plus-labels prefix.
func promValue(t *testing.T, doc, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(line, prefix+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, prefix+" "), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no sample %q in exposition:\n%s", prefix, doc)
	return 0
}

// TestPromMetricsMatchBatchQuantiles: the scraped episode-latency
// quantiles equal the batch computation (obs.Quantile over the same
// RecordEpisodes samples) — the served text format is a view of the
// deterministic registry, not a second estimator.
func TestPromMetricsMatchBatchQuantiles(t *testing.T) {
	col, base, id := runBridgePair(t)
	m := obs.NewMetrics()
	obs.RecordEpisodes(m, obs.FoldEpisodes(col.Events()))
	sorted := m.SortedSamples("episode.latency")
	if len(sorted) == 0 {
		t.Fatal("bridge vacuous: no resolved episodes in batch fold")
	}

	doc := string(apiOK(t, "GET", base+"/metrics", ""))
	sel := `ssos_episode_latency_steps{session="` + id + `"`
	for _, q := range []struct {
		label string
		pct   int
	}{{"0.5", 50}, {"0.9", 90}, {"0.99", 99}} {
		got := promValue(t, doc, sel+`,quantile="`+q.label+`"}`)
		if want := float64(obs.Quantile(sorted, q.pct)); got != want {
			t.Errorf("quantile %s: scraped %v, batch %v", q.label, got, want)
		}
	}
	if got := promValue(t, doc, `ssos_episode_latency_steps_count{session="`+id+`"}`); got != float64(len(sorted)) {
		t.Errorf("count: scraped %v, batch %d", got, len(sorted))
	}
	if got := promValue(t, doc, `ssos_episode_latency_steps_max{session="`+id+`"}`); got != float64(sorted[len(sorted)-1]) {
		t.Errorf("max: scraped %v, batch %d", got, sorted[len(sorted)-1])
	}
	if got := promValue(t, doc, `ssos_episodes_resolved_total{session="`+id+`"}`); got != float64(m.Counter("episodes.resolved")) {
		t.Errorf("resolved: scraped %v, batch %d", got, m.Counter("episodes.resolved"))
	}

	// The fault-class split carries the same samples for this scenario
	// (one class), so its quantiles must agree too.
	cls := obs.FoldEpisodes(col.Events())[0].FaultClass
	fsel := `ssos_episode_fault_latency_steps{session="` + id + `",fault="` + cls + `",quantile="0.5"}`
	if got := promValue(t, doc, fsel); got != float64(obs.Quantile(sorted, 50)) {
		t.Errorf("fault-split p50: scraped %v, batch %v", got, obs.Quantile(sorted, 50))
	}

	// A scrape is read-only: the registry clock and the session are
	// untouched, so a second scrape is byte-identical.
	if again := string(apiOK(t, "GET", base+"/metrics", "")); again != doc {
		t.Error("second scrape differs — scraping perturbed the daemon")
	}
}

// TestPromBlockTelemetry: the scraped superblock-engine counters equal
// the session's own status counters, and a run long enough to warm the
// engine actually retires work through blocks — the exported telemetry
// is live, not a dead zero.
func TestPromBlockTelemetry(t *testing.T) {
	_, base, id := runBridgePair(t)

	var st Status
	if err := json.Unmarshal(apiOK(t, "GET", base+"/api/sessions/"+id, ""), &st); err != nil {
		t.Fatal(err)
	}
	if st.Machine == nil {
		t.Fatal("machine session reported no machine status")
	}
	if st.Machine.Blocks == 0 || st.Machine.BlockInstrs == 0 {
		t.Fatalf("superblock engine never engaged: %+v", st.Machine)
	}

	doc := string(apiOK(t, "GET", base+"/metrics", ""))
	for _, c := range []struct {
		family string
		want   uint64
	}{
		{"ssos_session_blocks_total", st.Machine.Blocks},
		{"ssos_session_block_instrs_total", st.Machine.BlockInstrs},
		{"ssos_session_block_bails_total", st.Machine.BlockBails},
	} {
		got := promValue(t, doc, c.family+`{session="`+id+`"}`)
		if got != float64(c.want) {
			t.Errorf("%s: scraped %v, status %d", c.family, got, c.want)
		}
	}
}
