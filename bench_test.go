package ssos

import (
	"os"
	"path/filepath"
	"testing"

	"ssos/internal/asm"
	"ssos/internal/core"
	"ssos/internal/expt"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/isa"
	"ssos/internal/mem"
	"ssos/internal/obs"
)

// Experiment benchmarks: one per DESIGN.md experiment, running the
// quick configuration so `go test -bench` regenerates every result in
// reduced form. cmd/ssos-bench runs the full versions.

func benchOptions(i int) expt.Options {
	return expt.Options{Quick: true, Seed: int64(i)}
}

// writeFigure saves a benchmark's figure data as machine-readable JSON
// under benchdata/ (the bench- prefix keeps these quick-mode results
// distinct from cmd/ssos-bench's full-run exports). CI uploads the
// directory as a workflow artifact.
func writeFigure(b *testing.B, s *expt.Series) {
	b.Helper()
	if err := os.MkdirAll("benchdata", 0o755); err != nil {
		b.Fatal(err)
	}
	j, err := s.JSON()
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join("benchdata", "bench-"+s.ID+".json"), j, 0o644); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkE1RAMCorruption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E1RAMCorruption(benchOptions(i))
	}
}

func BenchmarkE2ArbitraryState(b *testing.B) {
	var f *expt.Series
	for i := 0; i < b.N; i++ {
		_, f = expt.E2ArbitraryState(benchOptions(i))
	}
	writeFigure(b, f)
}

func BenchmarkE3Baseline(b *testing.B) {
	var f *expt.Series
	for i := 0; i < b.N; i++ {
		_, f = expt.E3FaultRateComparison(benchOptions(i))
	}
	writeFigure(b, f)
}

func BenchmarkE4MonitorRepair(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E4MonitorRepair(benchOptions(i))
	}
}

func BenchmarkE5PeriodSweep(b *testing.B) {
	var f *expt.Series
	for i := 0; i < b.N; i++ {
		_, f = expt.E5PeriodSweep(benchOptions(i))
	}
	writeFigure(b, f)
}

func BenchmarkE6Primitive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E6Primitive(benchOptions(i))
	}
	b.StopTimer()
	writeFigure(b, expt.E6FairnessFigure(benchOptions(0)))
}

func BenchmarkE7Scheduler(b *testing.B) {
	o := benchOptions(0)
	o.Trials = 2
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i)
		expt.E7Scheduler(o)
	}
}

func BenchmarkE8Overhead(b *testing.B) {
	var f *expt.Series
	for i := 0; i < b.N; i++ {
		_, f = expt.E8Overhead(benchOptions(i))
	}
	writeFigure(b, f)
}

func BenchmarkE9Checkpoint(b *testing.B) {
	var f *expt.Series
	for i := 0; i < b.N; i++ {
		_, f = expt.E9Checkpoint(benchOptions(i))
	}
	writeFigure(b, f)
}

func BenchmarkE10TokenRing(b *testing.B) {
	o := benchOptions(0)
	o.Trials = 3
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i)
		expt.E10TokenRing(o)
	}
}

func BenchmarkE11Protection(b *testing.B) {
	o := benchOptions(0)
	o.Trials = 2
	for i := 0; i < b.N; i++ {
		o.Seed = int64(i)
		expt.E11Protection(o)
	}
}

func BenchmarkE12Adaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E12AdaptiveWatchdog(benchOptions(i))
	}
}

func BenchmarkE13Tickful(b *testing.B) {
	for i := 0; i < b.N; i++ {
		expt.E13TickfulSilentFaults(benchOptions(i))
	}
}

func BenchmarkE14Cluster(b *testing.B) {
	var f, fb *expt.Series
	for i := 0; i < b.N; i++ {
		_, f, fb = expt.E14ClusterAvailability(benchOptions(i))
	}
	writeFigure(b, f)
	writeFigure(b, fb)
}

// Micro-benchmarks: the substrate costs underlying every experiment.

// BenchmarkMachineStep measures raw simulator throughput on the guest
// kernel's main loop (steps per second drive every experiment above).
func BenchmarkMachineStep(b *testing.B) {
	s := core.MustNew(core.Config{Approach: core.ApproachBaseline})
	s.Run(10000) // past boot
	b.ResetTimer()
	s.Run(b.N)
}

// BenchmarkMachineStepSuperblock is BenchmarkMachineStep with the
// engine configuration made explicit: predecode cache and superblock
// engine on (the default). Kept as a separate name so CI bench history
// tracks the engines individually even if the default ever changes.
func BenchmarkMachineStepSuperblock(b *testing.B) {
	s := core.MustNew(core.Config{Approach: core.ApproachBaseline})
	s.M.SetDecodeCache(true)
	s.M.SetSuperblocks(true)
	s.Run(10000) // past boot
	b.ResetTimer()
	s.Run(b.N)
}

// BenchmarkMachineStepPredecode measures the PR 4 configuration:
// predecode cache on, superblock engine off. The gap to
// BenchmarkMachineStepSuperblock is the batching + threaded-dispatch
// win; the gap to BenchmarkMachineStepInterp is the decode-cache win.
func BenchmarkMachineStepPredecode(b *testing.B) {
	s := core.MustNew(core.Config{Approach: core.ApproachBaseline})
	s.M.SetSuperblocks(false)
	s.Run(10000) // past boot
	b.ResetTimer()
	s.Run(b.N)
}

// BenchmarkMachineStepInterp measures the reference interpreter alone:
// decode cache (and with it the superblock engine) off, every step a
// byte-wise fetch–decode–execute.
func BenchmarkMachineStepInterp(b *testing.B) {
	s := core.MustNew(core.Config{Approach: core.ApproachBaseline})
	s.M.SetDecodeCache(false)
	s.Run(10000) // past boot
	b.ResetTimer()
	s.Run(b.N)
}

// BenchmarkMachineStepProbed is BenchmarkMachineStep with the
// observability collector attached. The probe fires only on interrupt,
// exception and reset delivery — never per instruction — so this must
// stay within noise of the uninstrumented run.
func BenchmarkMachineStepProbed(b *testing.B) {
	s := core.MustNew(core.Config{Approach: core.ApproachBaseline})
	s.Instrument(obs.NewCollector())
	s.Run(10000) // past boot
	b.ResetTimer()
	s.Run(b.N)
}

// BenchmarkMachineStepScheduler measures throughput with the 5.2
// scheduler context-switching every quantum.
func BenchmarkMachineStepScheduler(b *testing.B) {
	s := core.MustNew(core.Config{Approach: core.ApproachScheduler})
	s.Run(10000)
	b.ResetTimer()
	s.Run(b.N)
}

// BenchmarkReinstallCycle measures one full watchdog reinstall cycle:
// NMI delivery, Figure 1 image copy and guest restart.
func BenchmarkReinstallCycle(b *testing.B) {
	s := core.MustNew(core.Config{Approach: core.ApproachReinstall})
	s.Run(10000)
	cycle := int(s.Cfg.WatchdogPeriod)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(cycle)
	}
}

// BenchmarkRecoveryFromBlast measures end-to-end recovery: OS image
// destroyed, machine run until legal heartbeats resume.
func BenchmarkRecoveryFromBlast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := core.MustNew(core.Config{Approach: core.ApproachReinstall})
		s.Run(20000)
		inj := fault.NewInjector(s.M, int64(i))
		inj.RandomizeRegion(mem.Region{Name: "os", Start: uint32(guest.OSSeg) << 4, Size: guest.ImageSize})
		faultStep := s.Steps()
		s.Run(int(s.Cfg.WatchdogPeriod) + 3*guest.ImageSize)
		if _, ok := s.Spec().RecoveredAfter(s.Heartbeat.Writes(), faultStep, 5); !ok {
			b.Fatal("no recovery")
		}
	}
}

// BenchmarkAssembler measures assembling the Figures 2-5 scheduler.
func BenchmarkAssembler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := guest.BuildScheduler(false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssemblerKernel measures assembling the padded guest kernel.
func BenchmarkAssemblerKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := guest.BuildKernel(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecode measures raw instruction decode.
func BenchmarkDecode(b *testing.B) {
	code := isa.Inst{Op: isa.OpMovRM, R1: uint8(isa.AX),
		Mem: isa.MemOp{Seg: isa.SS, Base: isa.BaseBX, Disp: 0x100}}.Encode(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := isa.Decode(code); !ok {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkSystemConstruction measures building a full system from the
// cached guest programs (per-trial cost in every experiment).
func BenchmarkSystemConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.MustNew(core.Config{Approach: core.ApproachMonitor})
	}
}

// BenchmarkProgramAssembleListing exercises the assembler end to end on
// a synthetic program with labels, data and padding.
func BenchmarkProgramAssembleListing(b *testing.B) {
	src := `
V equ 0x100
%pad on
start:
	mov ax, V
	add ax, bx
	cmp ax, 0x200
	jb start
	mov word [ss:V-2], ax
%pad off
	dw start, V
	times 16 db 0xEE
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := asm.Assemble(src)
		if err != nil {
			b.Fatal(err)
		}
		_ = p.ListingString()
	}
}
