module ssos

go 1.22
