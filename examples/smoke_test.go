// Package examples_test smoke-tests every runnable example: each one
// must build and run to completion ("go run ./examples/<name>") with a
// zero exit status and produce some output. The examples double as
// living documentation, so a refactor that breaks one should fail the
// test suite, not a reader's terminal.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile and run full simulations; skipped in -short mode")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatal("no example directories found")
	}
	root, err := filepath.Abs("..")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./examples/%s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
