// Layered ring: the paper's composition claim, live.
//
// A self-stabilizing algorithm (a token ring) runs as guest processes
// on the self-stabilizing scheduler, the two layers are corrupted
// *jointly*, and the stack converges back to a single circulating
// token — first on one machine, then one ring node per replica across
// a simulated fleet.
//
// The whole run is deterministic: part 3 executes the single-machine
// script twice with the same seed and proves the two structured event
// streams byte-identical — the property the CI layered-smoke job holds
// for the CLI binaries.
//
// Run with: go run ./examples/layeredring
package main

import (
	"bytes"
	"fmt"
	"os"

	"ssos/internal/cluster"
	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/obs"
	"ssos/internal/serve"
)

const seed = 11

func main() {
	machine()
	fleet()
	determinism()
}

// machineScript boots the K-state mailbox ring on the 5.2 scheduler,
// corrupts both layers at once mid-run, and runs to recovery. The
// whole session is recorded through the observability layer; the
// returned bytes are the JSONL event stream.
func machineScript(report bool) []byte {
	s := core.MustNew(core.Config{
		Approach: core.ApproachScheduler,
		Workload: core.WorkloadMailboxKState,
	})
	col := obs.NewCollector()
	s.Instrument(col)

	s.Run(200000)
	if report {
		fmt.Printf("booted: privileges=%v ring=%v\n", s.MailboxPrivileges(), s.MailboxRing())
	}

	// The joint fault: the mailbox words (algorithm layer) and, through
	// the catalog's shared injection path, the nodes' parked registers —
	// plus a CPU blast for good measure.
	inj := fault.NewInjector(s.M, seed)
	if err := serve.InjectFault(s, inj, "mailbox"); err != nil {
		fmt.Fprintln(os.Stderr, "layeredring:", err)
		os.Exit(1)
	}
	inj.BlastCPU()
	faultStep := s.Steps()

	step, ok := s.MailboxConverged(4000000, 500, 100)
	if !ok {
		fmt.Println("did not converge (unexpected)")
		os.Exit(1)
	}
	if report {
		fmt.Printf("joint fault at step %d: mailbox randomized, CPU blasted\n", faultStep)
		fmt.Printf("re-converged: one privilege sustained from step %d (%d steps after the fault)\n",
			step, step-uint64(faultStep))
		holders := map[int]bool{}
		for len(holders) < s.MailboxNodes() {
			s.Run(500)
			if p := s.MailboxPrivileges(); len(p) == 1 {
				holders[p[0]] = true
			}
		}
		fmt.Printf("token circulation resumed: every node held the privilege again\n\n")
	}

	var buf bytes.Buffer
	if err := col.WriteJSONL(&buf); err != nil {
		fmt.Fprintln(os.Stderr, "layeredring:", err)
		os.Exit(1)
	}
	return buf.Bytes()
}

func machine() {
	fmt.Println("== part 1: one machine — K-state ring on the 5.2 scheduler ==")
	machineScript(true)
}

// fleet runs the 3-state ring one node per replica: each replica is a
// whole scheduler machine hosting a single ring node, and a relay shim
// copies the raw mailbox words between machines after every round.
func fleet() {
	fmt.Println("== part 2: fleet — one ring node per replica (dijkstra3) ==")
	f, err := cluster.NewRingFleet(cluster.RingFleetConfig{
		Variant: guest.VariantDijkstra3,
		Seed:    seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "layeredring:", err)
		os.Exit(1)
	}
	const window = 50
	if _, ok := f.Converged(6000000, window); !ok {
		fmt.Println("no initial convergence (unexpected)")
		os.Exit(1)
	}
	fmt.Printf("%d replicas booted and converged, ring=%v\n", f.Nodes(), f.Ring())

	at := f.Steps()
	f.Scramble(cluster.ScrambleJoint)
	since, ok := f.Converged(12000000, window)
	if !ok {
		fmt.Println("did not re-converge (unexpected)")
		os.Exit(1)
	}
	fmt.Printf("joint scramble (every replica's OS + ring state) at fleet step %d\n", at)
	fmt.Printf("re-converged: legal from fleet step %d (%d steps after scramble), ring=%v\n\n",
		since, since-at, f.Ring())
}

// determinism runs the part-1 script twice and compares the two event
// streams byte for byte: same seed, same bytes — the contract every
// experiment in this repository leans on.
func determinism() {
	fmt.Println("== part 3: determinism — same seed, byte-identical events ==")
	a := machineScript(false)
	b := machineScript(false)
	if !bytes.Equal(a, b) {
		fmt.Println("event streams differ (unexpected)")
		os.Exit(1)
	}
	lines := bytes.Count(a, []byte{'\n'})
	fmt.Printf("two full runs produced byte-identical event streams (%d events, %d bytes)\n",
		lines, len(a))
}
