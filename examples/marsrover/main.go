// Mars rover: the paper's motivating scenario — "entire years of work
// maybe lost when the operating system of an expensive complicated
// device (e.g., spaceship) may reach an arbitrary state (e.g., due to
// soft errors) ... (e.g., on Mars)".
//
// A rover's flight computer runs unattended under a sustained cosmic-
// ray soft-error rate. Nobody can press reset. This example flies the
// same mission three times — on a conventional OS, on the approach-1
// reinstall system, and on the approach-2 monitoring system — and
// reports how much telemetry each one delivered.
//
// Run with: go run ./examples/marsrover
package main

import (
	"fmt"

	"ssos/internal/core"
	"ssos/internal/fault"
)

const (
	missionSteps = 2000000 // the "mission" length in machine steps
	softErrRate  = 3e-5    // faults per step: a harsh radiation environment
)

func main() {
	fmt.Println("== mars rover mission: unattended operation under soft errors ==")
	fmt.Printf("mission: %d steps, soft-error rate %g/step (~%d expected faults)\n\n",
		missionSteps, softErrRate, int(missionSteps*softErrRate))

	type result struct {
		approach  core.Approach
		beats     uint64
		faults    int
		avail     float64
		nmis      uint64
		exc       uint64
		lastAlive uint64
	}
	var results []result

	for _, a := range []core.Approach{
		core.ApproachBaseline, core.ApproachCheckpoint, core.ApproachAdaptive,
		core.ApproachReinstall, core.ApproachMonitor,
	} {
		sys := core.MustNew(core.Config{Approach: a, ConsoleCap: 200000})
		inj := fault.NewInjector(sys.M, 2026)
		detach := inj.Rate(softErrRate)
		sys.Run(missionSteps)
		detach()

		w := sys.Heartbeat.Writes()
		var up uint64
		spec := sys.Spec()
		for i := 1; i < len(w); i++ {
			gap := w[i].Step - w[i-1].Step
			if w[i].Value == w[i-1].Value+1 && gap <= spec.MaxGap {
				up += gap
			}
		}
		var lastAlive uint64
		if len(w) > 0 {
			lastAlive = w[len(w)-1].Step
		}
		results = append(results, result{
			approach:  a,
			beats:     sys.Heartbeat.Total(),
			faults:    len(inj.Log),
			avail:     float64(up) / float64(missionSteps),
			nmis:      sys.M.Stats.NMIs,
			exc:       sys.M.Stats.Exceptions,
			lastAlive: lastAlive,
		})
	}

	fmt.Printf("%-10s  %10s  %7s  %12s  %6s  %11s  %s\n",
		"approach", "telemetry", "faults", "availability", "NMIs", "exceptions", "alive at end?")
	for _, r := range results {
		alive := "DEAD"
		if missionSteps-r.lastAlive < 100000 {
			alive = "alive"
		}
		fmt.Printf("%-10v  %10d  %7d  %11.1f%%  %6d  %11d  %s (last telemetry at step %d)\n",
			r.approach, r.beats, r.faults, 100*r.avail, r.nmis, r.exc, alive, r.lastAlive)
	}

	fmt.Println("\nreading the table:")
	fmt.Println(" - baseline: the first unlucky fault wedges it; telemetry stops and never resumes")
	fmt.Println(" - checkpoint: rollback helps until a corruption gets snapshotted; then every")
	fmt.Println("   rollback faithfully restores the damage")
	fmt.Println(" - adaptive: no restart tax and crash faults recover, but a zombie-shaped fault")
	fmt.Println("   (alive but illegal) is invisible to a silence detector")
	fmt.Println(" - reinstall: keeps coming back, but every recovery (and every watchdog period)")
	fmt.Println("   restarts the counters — telemetry sequence numbers reset")
	fmt.Println(" - monitor: repairs in place; sequence numbers keep counting across faults")
}
