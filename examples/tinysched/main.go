// Tiny scheduler: the paper's Section 5 tailored designs, live.
//
// Part 1 runs the primitive scheduler (5.1): three loop-free processes
// chained in ROM, stabilizing from any program-counter value without a
// single interrupt.
//
// Part 2 runs the self-stabilizing scheduler (5.2, Figures 2-5): four
// processes (one a ROM-resident code refresher) under an NMI-driven
// round robin, surviving corruption of the process table, the process
// index and even a process's code.
//
// Run with: go run ./examples/tinysched
package main

import (
	"fmt"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
	"ssos/internal/trace"
)

func main() {
	primitive()
	scheduler()
}

func primitive() {
	fmt.Println("== part 1: primitive scheduler (5.1) ==")
	sys := core.MustNew(core.Config{Approach: core.ApproachPrimitive})
	sys.Run(30000)
	fmt.Println("after 30000 steps with no interrupts at all:")
	for i, c := range sys.ProcBeats {
		fmt.Printf("  process %d: %d iterations\n", i, c.Total())
	}

	// Throw the program counter at three arbitrary places.
	for _, ip := range []uint16{0x0007, 0x0150, 0x03F0} {
		before := sys.ProcBeats[0].Total()
		sys.M.CPU.IP = ip
		sys.Run(5000)
		fmt.Printf("pc forced to %#04x: process 0 ran %d more iterations — chain re-synchronized\n",
			ip, sys.ProcBeats[0].Total()-before)
	}
	fmt.Println()
}

func scheduler() {
	fmt.Println("== part 2: self-stabilizing scheduler (5.2, Figures 2-5) ==")
	sys := core.MustNew(core.Config{Approach: core.ApproachScheduler})

	var ranges []trace.Range
	for i := 0; i < guest.NumProcs; i++ {
		base := uint32(guest.ProcCodeSeg(i)) << 4
		ranges = append(ranges, trace.Range{
			Name:  fmt.Sprintf("p%d", i),
			Start: base,
			End:   base + guest.ProcRegionSize,
		})
	}
	sampler := trace.NewPCSampler(ranges...)
	sys.M.AfterStep = sampler.Observe

	sys.Run(400000)
	fmt.Printf("quantum %d steps, %d context switches so far\n",
		sys.Cfg.WatchdogPeriod, sys.M.Stats.NMIs)
	fmt.Println("machine share per process (fairness, Lemma 5.3):")
	for i := 0; i < guest.NumProcs; i++ {
		role := "worker"
		if i == guest.RefresherIndex {
			role = "refresher (runs from ROM)"
		}
		fmt.Printf("  process %d: %5.1f%%  beats=%d  %s\n",
			i, 100*sampler.Share(i), sys.ProcBeats[i].Total(), role)
	}

	inj := fault.NewInjector(sys.M, 99)

	fmt.Println("\nfault 1: randomize the whole process table")
	inj.RandomizeRegion(mem.Region{
		Name:  "table",
		Start: uint32(guest.SchedSeg) << 4,
		Size:  guest.ProcessTableOff + guest.NumProcs*guest.ProcessEntrySize,
	})
	recoverReport(sys)

	fmt.Println("\nfault 2: randomize worker 0's code region in RAM")
	inj.RandomizeRegion(mem.Region{
		Name:  "p0-code",
		Start: uint32(guest.ProcCodeSeg(0)) << 4,
		Size:  guest.ProcRegionSize,
	})
	before := sys.ProcBeats[0].Total()
	sys.Run(900000)
	fmt.Printf("  refresher reloaded the region from ROM; worker 0 beat %d more times\n",
		sys.ProcBeats[0].Total()-before)

	fmt.Println("\nfault 3: full blast — all RAM and every CPU register randomized")
	inj.BlastRAM()
	inj.BlastCPU()
	recoverReport(sys)
}

func recoverReport(sys *core.System) {
	faultStep := sys.Steps()
	sys.Run(2000000)
	allOK := true
	var worst uint64
	for i := range sys.ProcBeats {
		step, ok := sys.ProcSpec(i).RecoveredAfter(sys.ProcBeats[i].Writes(), faultStep, 3)
		if !ok {
			allOK = false
			continue
		}
		if step-faultStep > worst {
			worst = step - faultStep
		}
	}
	if allOK {
		fmt.Printf("  all %d processes back to legal operation within %d steps\n",
			len(sys.ProcBeats), worst)
	} else {
		fmt.Println("  some process did not recover (unexpected)")
	}
}
