// Quickstart: build the paper's approach-1 system (Figure 1 watchdog/
// reinstall procedure in ROM, guest OS in RAM, self-stabilizing
// watchdog on the NMI pin), destroy the OS in RAM mid-run, and watch
// the system converge back to legal operation — the experiment the
// authors ran by hand in Bochs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
)

func main() {
	fmt.Println("== self-stabilizing OS quickstart: approach 1 (reinstall & restart) ==")

	sys := core.MustNew(core.Config{Approach: core.ApproachReinstall})
	fmt.Printf("built machine: guest OS image %d bytes in ROM at %#x, stabilizer ROM at %#x\n",
		guest.ImageSize, uint32(guest.OSROMSeg)<<4, uint32(guest.HandlerROMSeg)<<4)
	fmt.Printf("watchdog period: %d steps; NMI counter max: %d\n\n",
		sys.Cfg.WatchdogPeriod, sys.Cfg.NMICounterMax)

	// Phase 1: boot and run.
	sys.Run(100000)
	beats := sys.Heartbeat.Writes()
	last := beats[len(beats)-1]
	fmt.Printf("phase 1: ran 100000 steps, %d heartbeats, last value %d at step %d\n",
		len(beats), last.Value, last.Step)

	// Phase 2: a burst of soft errors wipes the OS — code and data.
	inj := fault.NewInjector(sys.M, 42)
	inj.RandomizeRegion(mem.Region{
		Name:  "guest OS",
		Start: uint32(guest.OSSeg) << 4,
		Size:  guest.ImageSize,
	})
	faultStep := sys.Steps()
	fmt.Printf("\nphase 2: randomized all %d bytes of the OS in RAM at step %d\n",
		guest.ImageSize, faultStep)

	// Phase 3: keep the clock ticking; the watchdog NMI reaches the
	// ROM reinstall procedure, which rebuilds and restarts the OS.
	sys.Run(200000)
	spec := sys.Spec()
	if step, ok := spec.RecoveredAfter(sys.Heartbeat.Writes(), faultStep, 10); ok {
		fmt.Printf("phase 3: RECOVERED — legal heartbeats from step %d (%d steps after the fault)\n",
			step, step-faultStep)
		fmt.Printf("         bound: one watchdog period (%d) + reinstall procedure (~%d steps)\n",
			sys.Cfg.WatchdogPeriod, guest.ImageSize+16)
	} else {
		fmt.Println("phase 3: NOT recovered (this should never happen)")
	}
	fmt.Printf("\nmachine stats: %d instructions, %d NMIs, %d exceptions\n",
		sys.M.Stats.Instrs, sys.M.Stats.NMIs, sys.M.Stats.Exceptions)

	// Contrast: the same fault kills a conventional system.
	fmt.Println("\n== contrast: conventional (baseline) system, same fault ==")
	base := core.MustNew(core.Config{Approach: core.ApproachBaseline})
	base.Run(100000)
	before := base.Heartbeat.Total()
	fault.NewInjector(base.M, 42).RandomizeRegion(mem.Region{
		Name:  "guest OS",
		Start: uint32(guest.OSSeg) << 4,
		Size:  guest.ImageSize,
	})
	base.Run(200000)
	if _, ok := base.Spec().RecoveredAfter(base.Heartbeat.Writes(), 100000, 10); ok {
		fmt.Println("baseline recovered?! (should never happen)")
	} else {
		fmt.Printf("baseline: dead — %d beats after the fault, halted=%v\n",
			base.Heartbeat.Total()-before, base.M.CPU.Halted)
	}
}
