// Reactor controller: the paper's second motivating scenario — "The
// controllers of critical facility (e.g., nuclear reactor) may
// experience unexpected fault (e.g., electrical spike) that will cause
// it to reach unexpected state, which may lead to harmful results."
//
// This example runs the approach-2 system (Section 4: reinstall the
// executable, monitor the state with consistency predicates) as a
// controller, injects targeted state corruptions an electrical spike
// might cause, and prints the monitor's repair log: which predicate
// detected each corruption, how fast, and that the controller's
// sequence counter survived.
//
// Run with: go run ./examples/reactor
package main

import (
	"fmt"

	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
)

func main() {
	fmt.Println("== reactor controller: approach 2 (monitor & repair) ==")
	sys := core.MustNew(core.Config{Approach: core.ApproachMonitor})
	fmt.Printf("predicates checked every %d steps by the ROM monitor:\n", sys.Cfg.WatchdogPeriod)
	fmt.Println("  P1: canary word == 0xC0DE")
	fmt.Println("  P2: task index < number of tasks")
	fmt.Println("  P3: checksum == sum(task run counters)")
	fmt.Println("  P4: interrupted cs:ip lies within controller code")
	fmt.Println("  P5: IPC queue head/tail address the ring")
	fmt.Println()

	sys.Run(150000)

	osBase := uint32(guest.OSSeg) << 4
	spikes := []struct {
		name   string
		strike func(*fault.Injector)
	}{
		{"spike flips the canary word", func(in *fault.Injector) {
			sys.M.Bus.PokeRAM(osBase+guest.VarCanary, 0x00)
		}},
		{"spike corrupts the task dispatcher index", func(in *fault.Injector) {
			sys.M.Bus.PokeRAM(osBase+guest.VarTaskIdx+1, 0x40)
		}},
		{"spike clobbers a task accounting counter", func(in *fault.Injector) {
			sys.M.Bus.PokeRAM(osBase+guest.VarTaskRuns+2, 0x99)
			sys.M.Bus.PokeRAM(osBase+guest.VarTaskRuns+3, 0x99)
		}},
		{"spike throws the program counter into the weeds", func(in *fault.Injector) {
			in.CorruptIP()
		}},
	}

	names := map[uint16]string{
		guest.RepairCanary:   "P1 canary restored",
		guest.RepairTaskIdx:  "P2 task index clamped",
		guest.RepairChecksum: "P3 checksum rebuilt from counters",
		guest.RepairResume:   "P4 resume address invalid -> restarted at controller entry",
	}

	inj := fault.NewInjector(sys.M, 7)
	for _, spike := range spikes {
		preBeats := sys.Heartbeat.Writes()
		var preCounter uint16
		if len(preBeats) > 0 {
			preCounter = preBeats[len(preBeats)-1].Value
		}
		preRepairs := sys.Repairs.Total()
		strikeStep := sys.Steps()
		spike.strike(inj)
		fmt.Printf("step %8d: %s\n", strikeStep, spike.name)

		sys.Run(2 * int(sys.Cfg.WatchdogPeriod))
		for _, r := range sys.Repairs.Writes() {
			if r.Step >= strikeStep {
				fmt.Printf("step %8d:   monitor: %s (+%d steps)\n",
					r.Step, names[r.Value], r.Step-strikeStep)
			}
		}
		if sys.Repairs.Total() == preRepairs {
			fmt.Printf("              monitor: no repair needed (state already legal)\n")
		}
		w := sys.Heartbeat.Writes()
		if len(w) > 0 && w[len(w)-1].Value > preCounter {
			fmt.Printf("              controller sequence counter: preserved (%d -> %d)\n",
				preCounter, w[len(w)-1].Value)
		}
		sys.Repairs.Reset()
		fmt.Println()
	}

	v := sys.Spec().Violations(sys.Heartbeat.Writes(), sys.Steps())
	fmt.Printf("end of shift: %d heartbeat-spec violations recorded over the whole run\n", len(v))
	fmt.Println("(brief glitches around each spike are expected; every run above ended legal)")
}
