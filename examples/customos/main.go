// Custom OS: bring your own guest. This example shows the library's
// extension point — write any operating system in the repository's
// assembly dialect, assemble it, and wrap it in the paper's Figure 1
// stabilizer with one call (core.NewCustom). The stabilizer knows
// nothing about the guest beyond its image bytes; the guest's only
// obligations are the memory map and being self-stabilizing given
// correct code (here: segments re-established every iteration).
//
// The guest below is a washing-machine controller caricature: a cycle
// state machine (fill -> wash -> rinse -> spin) that advances on a
// dwell counter and reports each state transition on a port. We corrupt
// its state machine mid-cycle and let the watchdog/reinstall bring it
// back.
//
// Run with: go run ./examples/customos
package main

import (
	"fmt"
	"os"

	"ssos/internal/asm"
	"ssos/internal/core"
	"ssos/internal/fault"
	"ssos/internal/guest"
	"ssos/internal/mem"
)

const controllerSource = `
OS_SEG     equ 0x2000
STACK_SEG  equ 0x3000
STATE_PORT equ 0x44

STATE      equ 0x300   ; 0 fill, 1 wash, 2 rinse, 3 spin
DWELL      equ 0x302   ; iterations remaining in the current state
CYCLES     equ 0x304   ; completed wash cycles

start:
	mov ax, OS_SEG
	mov ds, ax
	mov ax, STACK_SEG
	mov ss, ax
	mov sp, 0x0806
	mov word [STATE], 0
	mov word [DWELL], 25
	mov word [CYCLES], 0
loop_top:
	mov ax, OS_SEG       ; self-stabilizing discipline: refresh ds
	mov ds, ax
	mov ax, [STATE]      ; sanitize the state variable
	and ax, 3
	mov [STATE], ax
	; dwell in the current state
	mov ax, [DWELL]
	cmp ax, 0
	je advance
	dec ax
	mov [DWELL], ax
	jmp loop_top
advance:
	mov ax, [STATE]
	inc ax
	and ax, 3
	mov [STATE], ax
	mov word [DWELL], 25
	; report the transition: value = cycles*4 + new state
	cmp ax, 0
	jne report
	mov ax, [CYCLES]     ; spun out: one more finished cycle
	inc ax
	mov [CYCLES], ax
	mov ax, [STATE]
report:
	mov bx, [CYCLES]
	shl bx, 2
	add ax, bx
	out STATE_PORT, ax
	jmp loop_top
`

var stateNames = [4]string{"fill", "wash", "rinse", "spin"}

func main() {
	fmt.Println("== custom guest under the Figure 1 stabilizer ==")

	prog, err := asm.Assemble(controllerSource)
	if err != nil {
		fmt.Fprintln(os.Stderr, "assemble:", err)
		os.Exit(1)
	}
	img := make([]byte, 0x320) // code + the data window the guest uses
	copy(img, prog.Code)
	fmt.Printf("assembled washing-machine controller: %d bytes of code\n", len(prog.Code))

	sys, err := core.NewCustom(core.CustomConfig{
		Image:         img,
		HeartbeatPort: 0x44,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "build:", err)
		os.Exit(1)
	}
	fmt.Printf("wrapped it: image in ROM at %#x, watchdog period %d steps\n\n",
		uint32(guest.OSROMSeg)<<4, sys.Cfg.WatchdogPeriod)

	sys.Run(20000)
	report := func(header string, from int) int {
		w := sys.Heartbeat.Writes()
		fmt.Println(header)
		for _, pw := range w[from:] {
			fmt.Printf("  step %7d: cycle %d enters %s\n",
				pw.Step, pw.Value>>2, stateNames[pw.Value&3])
		}
		return len(w)
	}
	n := report("controller transitions (first 20000 steps):", 0)

	// Fault: scramble the controller's state machine and code.
	inj := fault.NewInjector(sys.M, 11)
	inj.RandomizeRegion(mem.Region{
		Name:  "controller",
		Start: uint32(guest.OSSeg) << 4,
		Size:  uint32(len(img)),
	})
	fmt.Printf("\n>>> step %d: controller RAM randomized (code and state)\n\n", sys.Steps())

	sys.Run(int(sys.Cfg.WatchdogPeriod) + 40000)
	report("after the watchdog reinstall (fresh cycle from ROM):", n)
	fmt.Printf("\nmachine: %d NMIs, %d exceptions — recovery needed no knowledge of the guest\n",
		sys.M.Stats.NMIs, sys.M.Stats.Exceptions)
}
